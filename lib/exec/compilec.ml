open Ddsm_ir
module Sema = Ddsm_sema.Sema
module Intrinsics = Ddsm_sema.Intrinsics
module Darray = Ddsm_runtime.Darray
module Rt = Ddsm_runtime.Rt
module Heap = Ddsm_runtime.Heap
module Argcheck = Ddsm_runtime.Argcheck
module Memsys = Ddsm_machine.Memsys
module Layout = Ddsm_dist.Layout
module Dim_map = Ddsm_dist.Dim_map
module Grid = Ddsm_dist.Grid
module K = Ddsm_dist.Kind

exception Return_local

type ctx = { ws : Eff.ws; frame : Frame.t }

type rt_arg = Ai of int | Af of float | Awhole of Frame.abind | Aelem of int * Types.ty

type entry = Eff.ws -> rt_arg list -> unit

type g = {
  prog : Prog.t;
  rt : Rt.t;
  checks : bool;
  bounds : bool;
  static_abind : routine:string -> array:string -> Frame.abind option;
  print : string -> unit;
  entries : (string, entry) Hashtbl.t;
  mutable cycle_limit : int;
}

let create prog ~rt ~checks ~bounds ~static_abind ~print =
  {
    prog;
    rt;
    checks;
    bounds;
    static_abind;
    print;
    entries = Hashtbl.create 16;
    cycle_limit = max_int;
  }

let set_cycle_limit g n = g.cycle_limit <- n

(* ------------------------------------------------------------------ *)
(* Per-routine compile environment *)

type slot = SInt of int | SFloat of int

type renv = {
  g : g;
  env : Sema.env;
  rname : string;
  slots : (string, slot) Hashtbl.t;
  mutable ni : int;
  mutable nf : int;
  aslots : (string, int) Hashtbl.t;
  mutable na : int;
}

let sema_scalar_ty renv x =
  match Sema.find_sym renv.env x with
  | Some (Sema.SScalar (ty, _)) -> Some ty
  | Some (Sema.SConst (Expr.Int _)) -> Some Types.Tint
  | Some (Sema.SConst _) -> Some Types.Treal
  | _ -> None

let slot_for renv x ~ty =
  match Hashtbl.find_opt renv.slots x with
  | Some s -> s
  | None ->
      let ty = match sema_scalar_ty renv x with Some t -> t | None -> ty in
      let s =
        match ty with
        | Types.Tint ->
            let i = renv.ni in
            renv.ni <- renv.ni + 1;
            SInt i
        | Types.Treal ->
            let i = renv.nf in
            renv.nf <- renv.nf + 1;
            SFloat i
      in
      Hashtbl.replace renv.slots x s;
      s

let arr_slot renv a =
  match Hashtbl.find_opt renv.aslots a with
  | Some i -> i
  | None ->
      let i = renv.na in
      renv.na <- renv.na + 1;
      Hashtbl.replace renv.aslots a i;
      i

let array_elem_ty renv a =
  match Sema.find_array renv.env a with
  | Some ai -> ai.Sema.ai_ty
  | None -> Types.Treal

(* ------------------------------------------------------------------ *)
(* Expression typing (includes compiler temporaries) *)

let rec ety renv (e : Expr.t) : Types.ty =
  let promote a b =
    if a = Types.Treal || b = Types.Treal then Types.Treal else Types.Tint
  in
  match e with
  | Expr.Int _ -> Types.Tint
  | Expr.Real _ | Expr.Str _ -> Types.Treal
  | Expr.Var x -> (
      match Hashtbl.find_opt renv.slots x with
      | Some (SInt _) -> Types.Tint
      | Some (SFloat _) -> Types.Treal
      | None -> (
          match sema_scalar_ty renv x with
          | Some ty -> ty
          | None -> (
              match Sema.find_sym renv.env x with
              | Some (Sema.SArray ai) -> ai.Sema.ai_ty
              | _ -> Types.Tint)))
  | Expr.Ref (a, _) -> array_elem_ty renv a
  | Expr.Bin (_, a, b) -> promote (ety renv a) (ety renv b)
  | Expr.Rel _ | Expr.Log _ | Expr.Not _ -> Types.Tint
  | Expr.Neg a -> ety renv a
  | Expr.Intrin (n, args) -> (
      match Intrinsics.lookup n with
      | Some { Intrinsics.result = `Int; _ } -> Types.Tint
      | Some { Intrinsics.result = `Real; _ } -> Types.Treal
      | Some { Intrinsics.result = `Same; _ } ->
          List.fold_left (fun acc a -> promote acc (ety renv a)) Types.Tint args
      | None -> Types.Tint)
  | Expr.Idiv _ | Expr.Imod _ | Expr.Meta _ | Expr.BaseOf _
  | Expr.GatherBase _ ->
      Types.Tint
  | Expr.AbsLoad (ty, _) -> ty

(* ------------------------------------------------------------------ *)
(* Memory helpers (word addresses; the engine converts to bytes) *)

let load_int g (addrf : ctx -> int) ctx =
  let addr = addrf ctx in
  Effect.perform (Eff.Mem (ctx.ws, addr, false));
  Heap.get_int g.rt.Rt.heap addr

let load_real g (addrf : ctx -> int) ctx =
  let addr = addrf ctx in
  Effect.perform (Eff.Mem (ctx.ws, addr, false));
  Heap.get_real g.rt.Rt.heap addr

(* Storing a real value into an INTEGER array element: NaN and
   out-of-range magnitudes have no integer representation — surface the
   located runtime error instead of int_of_float's silent 0/garbage. The
   fuzz reference interpreter mirrors this rule exactly. *)
let int_elem_of_real a v =
  match Rt.int_of_real v with
  | Some i -> i
  | None ->
      Eff.error "array %s: cannot store %g into an integer element (%s)" a v
        (if Float.is_nan v then "NaN" else "out of integer range")

let meta_addr name (ab : Frame.abind) field =
  match ab.Frame.ab_darr with
  | None ->
      Eff.error "array %s has no distribution descriptor (internal)" name
  | Some d -> (
      let mb = Darray.meta_base d in
      match field with
      | Expr.Procs dim -> mb + Darray.Meta.procs_off ~dim
      | Expr.Block dim -> mb + Darray.Meta.block_off ~dim
      | Expr.Stor dim -> mb + Darray.Meta.stor_off ~dim)

(* cost of an unoptimized reshaped address computation through the runtime
   oracle (used for element arguments at call sites): per distributed
   dimension one div and one mod, plus the indirect base load *)
let oracle_cost (d : Darray.t) =
  match d.Darray.layout with
  | None -> Costs.addressing
  | Some l ->
      let nd = List.length (List.filter K.is_distributed (Array.to_list l.Layout.kinds)) in
      (nd * 2 * Costs.int_div) + Costs.addressing + 1

(* Plain add/sub/mul/neg inside an *address* expression is free: real
   hardware folds base+offset arithmetic into address-generation, and the
   paper's measured reshaping overhead is exactly the div/mod operations and
   indirect loads, not the adds (§4.3/§7). *)
let alu_discount e =
  let n = ref 0 in
  Expr.iter
    (function
      | Expr.Bin ((Expr.Add | Expr.Sub | Expr.Mul), _, _) | Expr.Neg _ -> incr n
      | _ -> ())
    e;
  !n * Costs.alu

(* ------------------------------------------------------------------ *)
(* Expression compilation: (closure, static cost) *)

let rec compile_i renv (e : Expr.t) : (ctx -> int) * int =
  if ety renv e = Types.Treal then begin
    let f, c = compile_f renv e in
    ((fun ctx -> int_of_float (f ctx)), c + Costs.alu)
  end
  else
    match e with
    | Expr.Int n -> ((fun _ -> n), 0)
    | Expr.Var x -> (
        match slot_for renv x ~ty:Types.Tint with
        | SInt i -> ((fun ctx -> ctx.frame.Frame.ints.(i)), 0)
        | SFloat i -> ((fun ctx -> int_of_float ctx.frame.Frame.floats.(i)), Costs.alu))
    | Expr.Neg a ->
        let f, c = compile_i renv a in
        ((fun ctx -> -f ctx), c + Costs.alu)
    | Expr.Bin (op, a, b) -> (
        let fa, ca = compile_i renv a and fb, cb = compile_i renv b in
        let c = ca + cb in
        match op with
        | Expr.Add -> ((fun ctx -> fa ctx + fb ctx), c + Costs.alu)
        | Expr.Sub -> ((fun ctx -> fa ctx - fb ctx), c + Costs.alu)
        | Expr.Mul -> ((fun ctx -> fa ctx * fb ctx), c + Costs.alu)
        | Expr.Div ->
            ( (fun ctx ->
                let d = fb ctx in
                if d = 0 then Eff.error "integer division by zero";
                fa ctx / d),
              c + Costs.int_div )
        | Expr.Pow ->
            ( (fun ctx ->
                let base = fa ctx and e = fb ctx in
                if e < 0 then Eff.error "negative integer exponent";
                let rec pw acc n = if n = 0 then acc else pw (acc * base) (n - 1) in
                pw 1 e),
              c + Costs.pow ))
    | Expr.Rel (op, a, b) ->
        let cmpf, c =
          if ety renv a = Types.Treal || ety renv b = Types.Treal then begin
            let fa, ca = compile_f renv a and fb, cb = compile_f renv b in
            let cmp : float -> float -> bool =
              match op with
              | Expr.Lt -> ( < )
              | Expr.Le -> ( <= )
              | Expr.Gt -> ( > )
              | Expr.Ge -> ( >= )
              | Expr.Eq -> ( = )
              | Expr.Ne -> ( <> )
            in
            ((fun ctx -> cmp (fa ctx) (fb ctx)), ca + cb)
          end
          else begin
            let fa, ca = compile_i renv a and fb, cb = compile_i renv b in
            let cmp : int -> int -> bool =
              match op with
              | Expr.Lt -> ( < )
              | Expr.Le -> ( <= )
              | Expr.Gt -> ( > )
              | Expr.Ge -> ( >= )
              | Expr.Eq -> ( = )
              | Expr.Ne -> ( <> )
            in
            ((fun ctx -> cmp (fa ctx) (fb ctx)), ca + cb)
          end
        in
        ((fun ctx -> if cmpf ctx then 1 else 0), c + Costs.alu)
    | Expr.Log (op, a, b) ->
        let fa, ca = compile_i renv a and fb, cb = compile_i renv b in
        let f =
          match op with
          | Expr.And -> fun ctx -> if fa ctx <> 0 && fb ctx <> 0 then 1 else 0
          | Expr.Or -> fun ctx -> if fa ctx <> 0 || fb ctx <> 0 then 1 else 0
        in
        (f, ca + cb + Costs.alu)
    | Expr.Not a ->
        let f, c = compile_i renv a in
        ((fun ctx -> if f ctx = 0 then 1 else 0), c + Costs.alu)
    | Expr.Idiv (impl, a, b) ->
        let fa, ca = compile_i renv a and fb, cb = compile_i renv b in
        let cost = (match impl with Expr.Hw -> Costs.int_div | Expr.Fp -> Costs.fp_div) in
        ( (fun ctx ->
            let d = fb ctx in
            if d <= 0 then Eff.error "idiv by non-positive value";
            Ddsm_dist.Intmath.fdiv (fa ctx) d),
          ca + cb + cost )
    | Expr.Imod (impl, a, b) ->
        let fa, ca = compile_i renv a and fb, cb = compile_i renv b in
        let cost = (match impl with Expr.Hw -> Costs.int_div | Expr.Fp -> Costs.fp_div) in
        ( (fun ctx ->
            let d = fb ctx in
            if d <= 0 then Eff.error "imod by non-positive value";
            Ddsm_dist.Intmath.fmod (fa ctx) d),
          ca + cb + cost )
    | Expr.GatherBase id ->
        (* scratch base of the gather site; defined once the dominating
           [Stmt.Gather] has executed. Free: the executor's address math
           around it is charged through the enclosing [AbsLoad]. *)
        let key = renv.rname ^ "#" ^ string_of_int id in
        let rt = renv.g.rt in
        let site = ref None in
        ( (fun _ ->
            let s =
              match !site with
              | Some s -> s
              | None ->
                  let s = Rt.gather_site rt ~key in
                  site := Some s;
                  s
            in
            if s.Rt.gs_scratch < 0 then
              Eff.error "internal: gather site %s read before its inspector"
                key;
            s.Rt.gs_scratch),
          0 )
    | Expr.Meta (name, field) ->
        let aslot = arr_slot renv name in
        ( load_int renv.g (fun ctx ->
              meta_addr name ctx.frame.Frame.arrays.(aslot) field),
          0 )
    | Expr.BaseOf (name, p) ->
        let aslot = arr_slot renv name in
        let fp, cp = compile_i renv p in
        ( load_int renv.g (fun ctx ->
              let ab = ctx.frame.Frame.arrays.(aslot) in
              match ab.Frame.ab_darr with
              | None -> Eff.error "array %s has no descriptor (BaseOf)" name
              | Some d ->
                  let nd = Array.length d.Darray.extents in
                  Darray.meta_base d + Darray.Meta.bases_off ~ndims:nd + fp ctx),
          cp + Costs.addressing )
    | Expr.AbsLoad (Types.Tint, a) ->
        let fa, ca = compile_i renv a in
        (load_int renv.g fa, max 0 (ca - alu_discount a) + Costs.addressing)
    | Expr.Ref (a, subs) ->
        let addrf, c = ref_addr renv a subs in
        (load_int renv.g addrf, c)
    | Expr.Intrin (nm, args) -> compile_intrin_i renv nm args
    | Expr.Real _ | Expr.Str _ | Expr.AbsLoad (Types.Treal, _) ->
        assert false (* handled by the Treal fast path above *)

and compile_f renv (e : Expr.t) : (ctx -> float) * int =
  match e with
  | Expr.Real x -> ((fun _ -> x), 0)
  | Expr.Var x when ety renv e = Types.Treal -> (
      match slot_for renv x ~ty:Types.Treal with
      | SFloat i -> ((fun ctx -> ctx.frame.Frame.floats.(i)), 0)
      | SInt i -> ((fun ctx -> float_of_int ctx.frame.Frame.ints.(i)), Costs.alu))
  | Expr.Neg a when ety renv e = Types.Treal ->
      let f, c = compile_f renv a in
      ((fun ctx -> -.f ctx), c + Costs.alu)
  | Expr.Bin (op, a, b) when ety renv e = Types.Treal -> (
      let fa, ca = compile_f renv a and fb, cb = compile_f renv b in
      let c = ca + cb in
      match op with
      | Expr.Add -> ((fun ctx -> fa ctx +. fb ctx), c + Costs.alu)
      | Expr.Sub -> ((fun ctx -> fa ctx -. fb ctx), c + Costs.alu)
      | Expr.Mul -> ((fun ctx -> fa ctx *. fb ctx), c + Costs.alu)
      | Expr.Div -> ((fun ctx -> fa ctx /. fb ctx), c + Costs.real_div)
      | Expr.Pow -> ((fun ctx -> Float.pow (fa ctx) (fb ctx)), c + Costs.pow))
  | Expr.Ref (a, subs) when array_elem_ty renv a = Types.Treal ->
      let addrf, c = ref_addr renv a subs in
      (load_real renv.g addrf, c)
  | Expr.AbsLoad (Types.Treal, a) ->
      let fa, ca = compile_i renv a in
      (load_real renv.g fa, max 0 (ca - alu_discount a) + Costs.addressing)
  | Expr.Intrin (nm, args) when ety renv e = Types.Treal ->
      compile_intrin_f renv nm args
  | _ ->
      (* integer-typed expression promoted to real *)
      let f, c = compile_i renv e in
      ((fun ctx -> float_of_int (f ctx)), c + Costs.alu)

(* column-major address of an array reference through its runtime binding;
   reshaped descriptors fall back to the runtime oracle (call-argument
   subscript positions and defensive paths) *)
and ref_addr renv a subs : (ctx -> int) * int =
  let aslot = arr_slot renv a in
  let subfs = Array.of_list (List.map (fun s -> fst (compile_i renv s)) subs) in
  let subcost =
    List.fold_left
      (fun acc s -> acc + max 0 (snd (compile_i renv s) - alu_discount s))
      0 subs
  in
  let nd = Array.length subfs in
  let bounds = renv.g.bounds in
  let f ctx =
    let ab = ctx.frame.Frame.arrays.(aslot) in
    match ab.Frame.ab_darr with
    | Some d when d.Darray.reshaped ->
        (* runtime oracle with the unoptimized Table 1 cost *)
        let idx = Array.init nd (fun i -> subfs.(i) ctx) in
        ctx.ws.Eff.clock <- ctx.ws.Eff.clock + oracle_cost d;
        (try Darray.word_addr d idx
         with Invalid_argument m -> Eff.error "%s" m)
    | _ ->
        let addr = ref ab.Frame.ab_base in
        for i = 0 to nd - 1 do
          let x = subfs.(i) ctx - ab.Frame.ab_lowers.(i) in
          if bounds && (x < 0 || x >= ab.Frame.ab_extents.(i)) then
            Eff.error "array %s: subscript %d out of bounds in dim %d" a
              (subfs.(i) ctx) (i + 1);
          addr := !addr + (x * ab.Frame.ab_strides.(i))
        done;
        !addr
  in
  (f, subcost + Costs.addressing)

and compile_intrin_i renv nm args : (ctx -> int) * int =
  let cost = Costs.intrinsic nm in
  let ints () = List.map (fun a -> fst (compile_i renv a)) args in
  let argcost = List.fold_left (fun acc a -> acc + snd (compile_i renv a)) 0 args in
  match nm with
  | "mod" -> (
      match ints () with
      | [ fa; fb ] ->
          ( (fun ctx ->
              let d = fb ctx in
              if d = 0 then Eff.error "mod by zero";
              fa ctx mod d),
            argcost + cost )
      | _ -> Eff.error "mod arity")
  | "min" ->
      let fs = ints () in
      ((fun ctx -> List.fold_left (fun acc f -> min acc (f ctx)) max_int fs), argcost + cost)
  | "max" ->
      let fs = ints () in
      ((fun ctx -> List.fold_left (fun acc f -> max acc (f ctx)) min_int fs), argcost + cost)
  | "abs" -> (
      match ints () with
      | [ f ] -> ((fun ctx -> abs (f ctx)), argcost + cost)
      | _ -> Eff.error "abs arity")
  | "int" | "nint" -> (
      match args with
      | [ a ] ->
          let f, c = compile_f renv a in
          if nm = "int" then ((fun ctx -> int_of_float (f ctx)), c + cost)
          else ((fun ctx -> int_of_float (Float.round (f ctx))), c + cost)
      | _ -> Eff.error "%s arity" nm)
  | "dsm_nprocs" ->
      let n = Rt.nprocs renv.g.rt in
      ((fun _ -> n), cost)
  | "dsm_myproc" -> ((fun ctx -> ctx.ws.Eff.proc), cost)
  | "dsm_numprocs" | "dsm_chunksize" | "dsm_this_lo" | "dsm_this_hi"
  | "dsm_owner" | "dsm_distribution" | "dsm_isreshaped" ->
      compile_dsm renv nm args cost
  | _ -> Eff.error "unknown integer intrinsic %s" nm

and compile_dsm renv nm args cost : (ctx -> int) * int =
  let aname, rest =
    match args with
    | Expr.Var a :: rest -> (a, rest)
    | _ -> Eff.error "%s: first argument must name an array" nm
  in
  let aslot = arr_slot renv aname in
  let restf = List.map (fun a -> fst (compile_i renv a)) rest in
  let layout_of ctx =
    let ab = ctx.frame.Frame.arrays.(aslot) in
    match ab.Frame.ab_darr with
    | Some d -> (
        match d.Darray.layout with
        | Some l -> (d, l)
        | None -> Eff.error "%s: array %s is not distributed" nm aname)
    | None -> Eff.error "%s: array %s has no descriptor here" nm aname
  in
  let f ctx =
    let d, l = layout_of ctx in
    match (nm, restf) with
    | "dsm_numprocs", [ fdim ] -> l.Layout.grid.Grid.per_dim.(fdim ctx - 1)
    | "dsm_chunksize", [ fdim ] -> l.Layout.dims.(fdim ctx - 1).Dim_map.block
    | ("dsm_this_lo" | "dsm_this_hi"), [ fdim ] -> (
        let dim = fdim ctx - 1 in
        let total = Layout.nprocs l in
        let p = ctx.ws.Eff.proc mod total in
        let ow = Grid.delinear l.Layout.grid p in
        let ranges = Dim_map.portion_ranges l.Layout.dims.(dim) ~proc:ow.(dim) in
        match ranges with
        | [] -> 0
        | (lo, _) :: _ when nm = "dsm_this_lo" -> lo + d.Darray.lower.(dim)
        | rs ->
            let _, hi = List.nth rs (List.length rs - 1) in
            hi + d.Darray.lower.(dim))
    | "dsm_owner", [ fdim; fidx ] ->
        let dim = fdim ctx - 1 in
        Dim_map.owner l.Layout.dims.(dim) (fidx ctx - d.Darray.lower.(dim))
    | "dsm_distribution", [ fdim ] -> (
        match l.Layout.kinds.(fdim ctx - 1) with
        | K.Star -> 0
        | K.Block -> 1
        | K.Cyclic -> 2
        | K.Cyclic_k _ -> 3)
    | "dsm_isreshaped", [] -> if d.Darray.reshaped then 1 else 0
    | _ -> Eff.error "%s: bad arguments" nm
  in
  (f, cost + List.length restf)

and compile_intrin_f renv nm args : (ctx -> float) * int =
  let cost = Costs.intrinsic nm in
  let floats () = List.map (fun a -> fst (compile_f renv a)) args in
  let argcost = List.fold_left (fun acc a -> acc + snd (compile_f renv a)) 0 args in
  let unary op =
    match floats () with
    | [ f ] -> ((fun ctx -> op (f ctx)), argcost + cost)
    | _ -> Eff.error "%s arity" nm
  in
  match nm with
  | "sqrt" -> unary sqrt
  | "exp" -> unary exp
  | "log" -> unary log
  | "sin" -> unary sin
  | "cos" -> unary cos
  | "abs" -> unary Float.abs
  | "dble" | "float" -> unary Fun.id
  | "mod" -> (
      match floats () with
      | [ fa; fb ] -> ((fun ctx -> Float.rem (fa ctx) (fb ctx)), argcost + cost)
      | _ -> Eff.error "mod arity")
  | "min" ->
      let fs = floats () in
      ((fun ctx -> List.fold_left (fun acc f -> Float.min acc (f ctx)) infinity fs), argcost + cost)
  | "max" ->
      let fs = floats () in
      ( (fun ctx -> List.fold_left (fun acc f -> Float.max acc (f ctx)) neg_infinity fs),
        argcost + cost )
  | _ ->
      (* integer-valued intrinsic in a real context *)
      let f, c = compile_intrin_i renv nm args in
      ((fun ctx -> float_of_int (f ctx)), c + Costs.alu)

(* ------------------------------------------------------------------ *)
(* Statements *)

let charge c (ws : Eff.ws) = ws.Eff.clock <- ws.Eff.clock + c

(* Shardability of a parallel-region body (see DESIGN.md §11): the sharded
   engine may run a child coroutine's segments on a worker domain only when
   every effect the body can raise is [Eff.Mem] or a print.  Calls mutate
   the argument-check table (and the callee can do anything), barriers and
   redistributions mutate [Rt] state in an order the coordinator must
   control, and an unlowered doacross would fail anyway — all of those pin
   the children to the coordinator.  Nested [Par] runs inline at depth > 0,
   so only its body matters. *)
let rec stmts_shardable stmts =
  List.for_all
    (fun (t : Stmt.t) ->
      match t.Stmt.s with
      | Stmt.Call _ | Stmt.Barrier | Stmt.Redistribute _ | Stmt.Doacross _
      | Stmt.Gather _ ->
          false
      | Stmt.Do d -> stmts_shardable d.Stmt.body
      | Stmt.If (_, th, el) -> stmts_shardable th && stmts_shardable el
      | Stmt.Par p -> stmts_shardable p.Stmt.pbody
      | Stmt.Assign _ | Stmt.AbsStore _ | Stmt.Continue | Stmt.Return
      | Stmt.Print _ ->
          true)
    stmts

let rec compile_body renv stmts : ctx -> unit =
  let fs = Array.of_list (List.map (compile_stmt renv) stmts) in
  fun ctx ->
    for i = 0 to Array.length fs - 1 do
      fs.(i) ctx
    done

and compile_stmt renv (t : Stmt.t) : ctx -> unit =
  match t.Stmt.s with
  | Stmt.Assign (Stmt.LVar x, e) -> (
      let ty =
        match Hashtbl.find_opt renv.slots x with
        | Some (SInt _) -> Types.Tint
        | Some (SFloat _) -> Types.Treal
        | None -> ( match sema_scalar_ty renv x with Some t -> t | None -> ety renv e)
      in
      match slot_for renv x ~ty with
      | SInt i ->
          let f, c = compile_i renv e in
          let c = c + Costs.assign in
          fun ctx ->
            charge c ctx.ws;
            ctx.frame.Frame.ints.(i) <- f ctx
      | SFloat i ->
          let f, c = compile_f renv e in
          let c = c + Costs.assign in
          fun ctx ->
            charge c ctx.ws;
            ctx.frame.Frame.floats.(i) <- f ctx)
  | Stmt.Assign (Stmt.LRef (a, subs), e) -> (
      let addrf, ca = ref_addr renv a subs in
      let aslot = arr_slot renv a in
      (* write-generation bump: cached gather schedules over this array
         key on the version and must re-inspect after any visible store *)
      let bump ctx =
        match ctx.frame.Frame.arrays.(aslot).Frame.ab_darr with
        | Some d -> Darray.bump_version d
        | None -> ()
      in
      match array_elem_ty renv a with
      | Types.Treal ->
          let f, ce = compile_f renv e in
          let c = ca + ce + Costs.assign in
          fun ctx ->
            charge c ctx.ws;
            let v = f ctx in
            let addr = addrf ctx in
            Effect.perform (Eff.Mem (ctx.ws, addr, true));
            Heap.set_real renv.g.rt.Rt.heap addr v;
            bump ctx
      | Types.Tint when ety renv e = Types.Treal ->
          let f, ce = compile_f renv e in
          let c = ca + ce + Costs.assign + Costs.alu in
          fun ctx ->
            charge c ctx.ws;
            let v = int_elem_of_real a (f ctx) in
            let addr = addrf ctx in
            Effect.perform (Eff.Mem (ctx.ws, addr, true));
            Heap.set_int renv.g.rt.Rt.heap addr v;
            bump ctx
      | Types.Tint ->
          let f, ce = compile_i renv e in
          let c = ca + ce + Costs.assign in
          fun ctx ->
            charge c ctx.ws;
            let v = f ctx in
            let addr = addrf ctx in
            Effect.perform (Eff.Mem (ctx.ws, addr, true));
            Heap.set_int renv.g.rt.Rt.heap addr v;
            bump ctx)
  | Stmt.AbsStore (ty, aexp, e) -> (
      let addrf, ca0 = compile_i renv aexp in
      let ca = max 0 (ca0 - alu_discount aexp) + Costs.addressing in
      match ty with
      | Types.Treal ->
          let f, ce = compile_f renv e in
          let c = ca + ce + Costs.assign in
          fun ctx ->
            charge c ctx.ws;
            let v = f ctx in
            let addr = addrf ctx in
            Effect.perform (Eff.Mem (ctx.ws, addr, true));
            Heap.set_real renv.g.rt.Rt.heap addr v
      | Types.Tint when ety renv e = Types.Treal ->
          let f, ce = compile_f renv e in
          let c = ca + ce + Costs.assign + Costs.alu in
          fun ctx ->
            charge c ctx.ws;
            let v = int_elem_of_real "<lowered>" (f ctx) in
            let addr = addrf ctx in
            Effect.perform (Eff.Mem (ctx.ws, addr, true));
            Heap.set_int renv.g.rt.Rt.heap addr v
      | Types.Tint ->
          let f, ce = compile_i renv e in
          let c = ca + ce + Costs.assign in
          fun ctx ->
            charge c ctx.ws;
            let v = f ctx in
            let addr = addrf ctx in
            Effect.perform (Eff.Mem (ctx.ws, addr, true));
            Heap.set_int renv.g.rt.Rt.heap addr v)
  | Stmt.Do d -> (
      let flo, clo = compile_i renv d.Stmt.lo in
      let fhi, chi = compile_i renv d.Stmt.hi in
      let fstep, cstep =
        match d.Stmt.step with
        | None -> ((fun _ -> 1), 0)
        | Some s -> compile_i renv s
      in
      let head_cost = clo + chi + cstep + Costs.assign in
      match slot_for renv d.Stmt.var ~ty:Types.Tint with
      | SFloat _ -> Eff.error "loop variable %s is not an integer" d.Stmt.var
      | SInt slot ->
          let body = compile_body renv d.Stmt.body in
          let g = renv.g in
          fun ctx ->
            charge head_cost ctx.ws;
            let lo = flo ctx and hi = fhi ctx and step = fstep ctx in
            if step = 0 then Eff.error "do %s: zero step" d.Stmt.var;
            let ints = ctx.frame.Frame.ints in
            ints.(slot) <- lo;
            if step > 0 then
              while ints.(slot) <= hi do
                if ctx.ws.Eff.clock > g.cycle_limit then
                  raise (Eff.Cycle_limit g.cycle_limit);
                charge Costs.loop_iter ctx.ws;
                body ctx;
                ints.(slot) <- ints.(slot) + step
              done
            else
              while ints.(slot) >= hi do
                if ctx.ws.Eff.clock > g.cycle_limit then
                  raise (Eff.Cycle_limit g.cycle_limit);
                charge Costs.loop_iter ctx.ws;
                body ctx;
                ints.(slot) <- ints.(slot) + step
              done)
  | Stmt.If (cond, th, el) ->
      let fc, cc = compile_i renv cond in
      let fth = compile_body renv th and fel = compile_body renv el in
      fun ctx ->
        charge (cc + Costs.alu) ctx.ws;
        if fc ctx <> 0 then fth ctx else fel ctx
  | Stmt.Call (name, args) -> compile_call renv name args
  | Stmt.Doacross _ -> Eff.error "internal: doacross reached the VM unlowered"
  | Stmt.Redistribute rd ->
      let kinds = Array.of_list rd.Stmt.rkinds in
      let onto = Option.map Array.of_list rd.Stmt.ronto in
      let procs = rd.Stmt.rprocs in
      let qname = qualified_array renv rd.Stmt.rarray in
      fun ctx -> (
        match Rt.redistribute renv.g.rt ~name:qname ~kinds ?onto ?procs () with
        | Ok { Rt.moved; words = _; rounds; round_words; retries; fell_back }
          ->
            (* failed attempts cost backoff time; the data movement itself
               is charged by the round schedule — rounds run back to back,
               transfers within a round in parallel. A fallback costs only
               the retries (nothing moves, the old placement is kept). *)
            charge
              ((retries * Costs.redistribute_retry)
              + Costs.redistribute_scheduled ~rounds ~round_words)
              ctx.ws;
            Rt.note_event renv.g.rt
              ~name:(if fell_back then "redistribute-fallback"
                     else "redistribute")
              ~detail:
                (Printf.sprintf "%s moved=%d rounds=%d retries=%d" qname moved
                   rounds retries)
              ~proc:ctx.ws.Eff.proc ~now:ctx.ws.Eff.clock
        | Error m -> Eff.error "%s" m)
  | Stmt.Gather gth -> compile_gather renv gth
  | Stmt.Continue -> fun _ -> ()
  | Stmt.Barrier ->
      fun ctx ->
        Rt.note_barrier renv.g.rt ~proc:ctx.ws.Eff.proc ~now:ctx.ws.Eff.clock
  | Stmt.Return -> fun _ -> raise Return_local
  | Stmt.Print items ->
      let fs =
        List.map
          (fun e ->
            match e with
            | Expr.Str s -> fun _ -> s
            | _ -> (
                match ety renv e with
                | Types.Tint ->
                    let f, _ = compile_i renv e in
                    fun ctx -> string_of_int (f ctx)
                | Types.Treal ->
                    let f, _ = compile_f renv e in
                    fun ctx -> Printf.sprintf "%.10g" (f ctx)))
          items
      in
      fun ctx ->
        renv.g.print (String.concat " " (List.map (fun f -> f ctx) fs))
  | Stmt.Par p ->
      let region =
        Printf.sprintf "%s:%d" renv.rname t.Stmt.loc.Loc.line
      in
      let (myp_slot, np_slot) =
        match (slot_for renv "myp$" ~ty:Types.Tint, slot_for renv "np$" ~ty:Types.Tint) with
        | SInt a, SInt b -> (a, b)
        | _ -> assert false
      in
      let body = compile_body renv p.Stmt.pbody in
      let shardable = stmts_shardable p.Stmt.pbody in
      fun ctx ->
        if ctx.ws.Eff.depth > 0 then begin
          (* nested parallelism runs single-worker (documented) *)
          ctx.frame.Frame.ints.(myp_slot) <- 0;
          ctx.frame.Frame.ints.(np_slot) <- 1;
          body ctx
        end
        else begin
          let n = Rt.nprocs renv.g.rt in
          let parent_frame = ctx.frame in
          Effect.perform
            (Eff.Fork
               ( ctx.ws,
                 (fun cws p ->
                   let fr = Frame.copy_scalars parent_frame in
                   fr.Frame.ints.(myp_slot) <- p;
                   fr.Frame.ints.(np_slot) <- n;
                   body { ws = cws; frame = fr }),
                 n,
                 region,
                 shardable ))
        end

(* ------------------------------------------------------------------ *)
(* Inspector-executor gather (Stmt.Gather, serial context only).

   On a schedule-cache miss — keyed on (index-array version, target
   version, evaluated rectangle bounds) — the inspector walks the
   iteration rectangle once, reads the index vector through ordinary
   timed accesses, computes each referenced target address with the SAME
   base/lower/stride arithmetic as the naive reference path (bit-faithful,
   including the bounds-mode error), and bins the accesses by (source
   home, scratch home) into an all-to-all round schedule.

   On EVERY execution the current target values move into scratch: one
   bulk fetch charged by the round schedule, or — when the fault plan
   fails the fetch past the bounded retries — a per-element fallback
   through ordinary timed loads. Either way the scratch holds the same
   values, so results never depend on the fault plan. *)

and max_gather_attempts = 3

and compile_gather renv (gth : Stmt.gather) : ctx -> unit =
  let g = renv.g in
  let key = renv.rname ^ "#" ^ string_of_int gth.Stmt.g_id in
  let tslot = arr_slot renv gth.Stmt.g_target in
  let islot = arr_slot renv gth.Stmt.g_index in
  let tq = qualified_array renv gth.Stmt.g_target in
  let dims =
    Array.of_list
      (List.map
         (fun (v, lo, hi) ->
           let slot =
             match slot_for renv v ~ty:Types.Tint with
             | SInt i -> i
             | SFloat _ ->
                 Eff.error "gather: loop variable %s is not an integer" v
           in
           (slot, fst (compile_i renv lo), fst (compile_i renv hi)))
         gth.Stmt.g_dims)
  in
  let ndims = Array.length dims in
  let isubfs =
    Array.of_list
      (List.map (fun e -> fst (compile_i renv e)) gth.Stmt.g_isubs)
  in
  let isubcost =
    List.fold_left
      (fun acc e -> acc + max 0 (snd (compile_i renv e) - alu_discount e))
      0 gth.Stmt.g_isubs
  in
  let nisubs = Array.length isubfs in
  let scale = gth.Stmt.g_scale and off = gth.Stmt.g_off in
  let bounds = g.bounds in
  let target = gth.Stmt.g_target and index = gth.Stmt.g_index in
  let real_elems = array_elem_ty renv target = Types.Treal in
  fun ctx ->
    let rt = g.rt in
    let tab = ctx.frame.Frame.arrays.(tslot) in
    let iab = ctx.frame.Frame.arrays.(islot) in
    let td =
      match tab.Frame.ab_darr with
      | Some d -> d
      | None -> Eff.error "internal: gather target %s has no descriptor" target
    in
    let idd =
      match iab.Frame.ab_darr with
      | Some d -> d
      | None -> Eff.error "internal: gather index %s has no descriptor" index
    in
    let los = Array.make (max 1 ndims) 0 and his = Array.make (max 1 ndims) 0 in
    let nslots = ref 1 in
    Array.iteri
      (fun d (_, flo, fhi) ->
        let lo = flo ctx and hi = fhi ctx in
        los.(d) <- lo;
        his.(d) <- hi;
        nslots := !nslots * max 0 (hi - lo + 1))
      dims;
    let nslots = !nslots in
    let site = Rt.gather_site rt ~key in
    if nslots = 0 then begin
      (* empty rectangle: the executor never runs, but its [GatherBase]
         is still compiled — leave a harmless base in place *)
      if site.Rt.gs_scratch < 0 then site.Rt.gs_scratch <- 0
    end
    else begin
      let keynow =
        (idd.Darray.version, td.Darray.version, Array.append los his)
      in
      (match site.Rt.gs_key with
      | Some k when k = keynow -> ()
      | _ ->
          (* cache miss: inspect. The index vector is read through
             ordinary timed accesses — inspection is real work the
             benchmark must see; repeated sweeps then hit the cache. *)
          rt.Rt.gather_inspections <- rt.Rt.gather_inspections + 1;
          if site.Rt.gs_cap < nslots then begin
            site.Rt.gs_scratch <-
              Rt.alloc_gather_scratch rt ~src_array:tq ~words:nslots;
            site.Rt.gs_cap <- nslots
          end;
          if Array.length site.Rt.gs_addrs < nslots then
            site.Rt.gs_addrs <- Array.make nslots 0;
          let addrs = site.Rt.gs_addrs in
          let ints = ctx.frame.Frame.ints in
          let mem = rt.Rt.mem in
          let nnodes = Ddsm_machine.Config.nnodes (Memsys.config mem) in
          let scratch = site.Rt.gs_scratch in
          (* (round class, src node, dst node) -> words of that transfer *)
          let pairs : (int * int * int, int ref) Hashtbl.t =
            Hashtbl.create 16
          in
          let slot = ref 0 in
          let rec walk d =
            if d = ndims then begin
              charge (Costs.gather_inspect + isubcost) ctx.ws;
              let iaddr = ref iab.Frame.ab_base in
              for j = 0 to nisubs - 1 do
                let x = isubfs.(j) ctx - iab.Frame.ab_lowers.(j) in
                if bounds && (x < 0 || x >= iab.Frame.ab_extents.(j)) then
                  Eff.error "array %s: subscript %d out of bounds in dim %d"
                    index (isubfs.(j) ctx) (j + 1);
                iaddr := !iaddr + (x * iab.Frame.ab_strides.(j))
              done;
              let iaddr = !iaddr in
              Effect.perform (Eff.Mem (ctx.ws, iaddr, false));
              let ival = Heap.get_int rt.Rt.heap iaddr in
              let sub = (scale * ival) + off in
              let x = sub - tab.Frame.ab_lowers.(0) in
              if bounds && (x < 0 || x >= tab.Frame.ab_extents.(0)) then
                Eff.error "array %s: subscript %d out of bounds in dim %d"
                  target sub 1;
              let taddr = tab.Frame.ab_base + (x * tab.Frame.ab_strides.(0)) in
              addrs.(!slot) <- taddr;
              let home a =
                Option.value ~default:0
                  (Memsys.home_of_addr mem (Heap.byte_of_word a))
              in
              let src = home taddr and dst = home (scratch + !slot) in
              let cls = Ddsm_dist.Redist.round_class ~r:nnodes ~src ~dst in
              (match Hashtbl.find_opt pairs (cls, src, dst) with
              | Some r -> incr r
              | None -> Hashtbl.replace pairs (cls, src, dst) (ref 1));
              incr slot
            end
            else begin
              let vslot, _, _ = dims.(d) in
              for i = los.(d) to his.(d) do
                ints.(vslot) <- i;
                walk (d + 1)
              done
            end
          in
          (* the walk drives the loop variables through the serial frame;
             restore them afterwards so the executor (and any read of the
             variables after the nest) sees exactly the naive values *)
          let saved = Array.map (fun (vslot, _, _) -> ints.(vslot)) dims in
          walk 0;
          Array.iteri (fun d (vslot, _, _) -> ints.(vslot) <- saved.(d)) dims;
          (* classes run back to back; within a class the per-pair
             transfers run in parallel, so a round costs its largest *)
          let per_class : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
          Hashtbl.iter
            (fun (cls, _, _) n ->
              match Hashtbl.find_opt per_class cls with
              | Some m -> if !n > !m then m := !n
              | None -> Hashtbl.replace per_class cls (ref !n))
            pairs;
          site.Rt.gs_rounds <- Hashtbl.length per_class;
          site.Rt.gs_round_words <-
            Hashtbl.fold (fun _ m acc -> acc + !m) per_class 0;
          site.Rt.gs_key <- Some keynow;
          Rt.note_event rt ~name:"gather-inspect"
            ~detail:
              (Printf.sprintf "%s slots=%d rounds=%d" key nslots
                 site.Rt.gs_rounds)
            ~proc:ctx.ws.Eff.proc ~now:ctx.ws.Eff.clock);
      (* every execution: move the CURRENT target values into scratch *)
      let addrs = site.Rt.gs_addrs in
      let scratch = site.Rt.gs_scratch in
      let heap = rt.Rt.heap in
      let copy_one =
        if real_elems then fun i ->
          Heap.set_real heap (scratch + i) (Heap.get_real heap addrs.(i))
        else fun i ->
          Heap.set_int heap (scratch + i) (Heap.get_int heap addrs.(i))
      in
      let fault = Memsys.fault rt.Rt.mem in
      let rec attempt tries =
        let fetch = Rt.next_gather_fetch rt in
        if not (Ddsm_check.Fault.gather_fetch_fails fault ~fetch) then begin
          for i = 0 to nslots - 1 do
            copy_one i
          done;
          charge
            (Costs.gather_scheduled ~rounds:site.Rt.gs_rounds
               ~round_words:site.Rt.gs_round_words)
            ctx.ws;
          Rt.note_event rt ~name:"gather"
            ~detail:
              (Printf.sprintf "%s slots=%d rounds=%d retries=%d" key nslots
                 site.Rt.gs_rounds tries)
            ~proc:ctx.ws.Eff.proc ~now:ctx.ws.Eff.clock
        end
        else begin
          rt.Rt.gather_retries <- rt.Rt.gather_retries + 1;
          charge Costs.gather_retry ctx.ws;
          if tries + 1 < max_gather_attempts then attempt (tries + 1)
          else begin
            (* retries exhausted: per-element fallback through ordinary
               timed loads — same addresses, same values, only slower *)
            rt.Rt.gather_fallbacks <- rt.Rt.gather_fallbacks + 1;
            for i = 0 to nslots - 1 do
              Effect.perform (Eff.Mem (ctx.ws, addrs.(i), false));
              copy_one i
            done;
            Rt.note_event rt ~name:"gather-fallback"
              ~detail:(Printf.sprintf "%s slots=%d" key nslots)
              ~proc:ctx.ws.Eff.proc ~now:ctx.ws.Eff.clock
          end
        end
      in
      attempt 0
    end

and qualified_array renv name =
  match Sema.find_array renv.env name with
  | Some { Sema.ai_common = Some blk; _ } -> Printf.sprintf "/%s/%s" blk name
  | _ -> Printf.sprintf "%s/%s" renv.rname name

(* ------------------------------------------------------------------ *)
(* Calls *)

and compile_call renv name args : ctx -> unit =
  let g = renv.g in
  match Prog.find g.prog name with
  | None -> fun _ -> Eff.error "call to undefined subroutine %s" name
  | Some callee ->
      let formals = callee.Prog.env.Sema.routine.Decl.rparams in
      if List.length formals <> List.length args then
        Eff.error "call %s: %d arguments for %d formals" name (List.length args)
          (List.length formals);
      (* per-argument: evaluator and optional argcheck registration *)
      let builders =
        List.map2
          (fun formal actual ->
            match Sema.find_sym callee.Prog.env formal with
            | Some (Sema.SArray _) -> compile_array_arg renv formal actual
            | Some (Sema.SScalar (ty, _)) -> (
                match ty with
                | Types.Tint ->
                    let f, c = compile_i renv actual in
                    (((fun ctx -> Ai (f ctx)), c), fun _ -> None)
                | Types.Treal ->
                    let f, c = compile_f renv actual in
                    (((fun ctx -> Af (f ctx)), c), fun _ -> None))
            | _ ->
                Eff.error "call %s: formal %s is not declared in the callee"
                  name formal)
          formals args
      in
      let argfs = List.map (fun ((f, _), _) -> f) builders in
      let regfs = List.map snd builders in
      let static_cost =
        Costs.call + List.fold_left (fun acc ((_, c), _) -> acc + c) 0 builders
      in
      fun ctx ->
        charge static_cost ctx.ws;
        let argv = List.map (fun f -> f ctx) argfs in
        let regs =
          if g.checks then
            List.filter_map
              (fun f ->
                match f ctx with
                | Some (addr, info) ->
                    charge Costs.argcheck_register ctx.ws;
                    Argcheck.register g.rt.Rt.argcheck ~addr info;
                    Some addr
                | None -> None)
              regfs
          else []
        in
        let entry =
          match Hashtbl.find_opt g.entries name with
          | Some e -> e
          | None -> Eff.error "internal: %s not compiled" name
        in
        (* not Fun.protect: an unregister underflow must surface as a plain
           runtime error on the success path, and ~finally would wrap it in
           Finally_raised *)
        (match entry ctx.ws argv with
        | () ->
            List.iter
              (fun addr ->
                match Argcheck.unregister g.rt.Rt.argcheck ~addr with
                | Ok () -> ()
                | Error m -> Eff.error "%s" m)
              regs
        | exception e ->
            List.iter
              (fun addr ->
                ignore (Argcheck.unregister g.rt.Rt.argcheck ~addr))
              regs;
            raise e)

(* array actual argument: whole array (Var) or element (Ref) *)
and compile_array_arg renv formal actual :
    ((ctx -> rt_arg) * int) * (ctx -> (int * Argcheck.info) option) =
  ignore formal;
  match actual with
  | Expr.Var a ->
      let aslot = arr_slot renv a in
      let evalf ctx = Awhole ctx.frame.Frame.arrays.(aslot) in
      let regf ctx =
        let ab = ctx.frame.Frame.arrays.(aslot) in
        match ab.Frame.ab_darr with
        | Some d when d.Darray.reshaped -> (
            match d.Darray.layout with
            | Some l ->
                Some
                  ( ab.Frame.ab_base,
                    Argcheck.Whole_array
                      { extents = d.Darray.extents; kinds = l.Layout.kinds } )
            | None -> None)
        | _ -> None
      in
      ((evalf, Costs.alu), regf)
  | Expr.Ref (a, subs) ->
      let addrf, ca = ref_addr renv a subs in
      let ty = array_elem_ty renv a in
      let aslot = arr_slot renv a in
      let idxfs = Array.of_list (List.map (fun s -> fst (compile_i renv s)) subs) in
      let evalf ctx =
        (* the callee receives a bare address (its binding has no
           descriptor), so any store it makes through the element is
           invisible to the version counter — bump conservatively here *)
        (match ctx.frame.Frame.arrays.(aslot).Frame.ab_darr with
        | Some d -> Darray.bump_version d
        | None -> ());
        Aelem (addrf ctx, ty)
      in
      let regf ctx =
        let ab = ctx.frame.Frame.arrays.(aslot) in
        match ab.Frame.ab_darr with
        | Some d when d.Darray.reshaped ->
            let addr = addrf ctx in
            let idx = Array.map (fun f -> f ctx) idxfs in
            Some (addr, Argcheck.Portion { words = Darray.portion_run d idx })
        | _ -> None
      in
      ((evalf, ca), regf)
  | _ -> Eff.error "array argument must be an array name or an array element"

(* ------------------------------------------------------------------ *)
(* Routine entries *)

let compile_routine g (name : string) (pr : Prog.routine) : entry =
  let renv =
    {
      g;
      env = pr.Prog.env;
      rname = name;
      slots = Hashtbl.create 32;
      ni = 0;
      nf = 0;
      aslots = Hashtbl.create 8;
      na = 0;
    }
  in
  let r = pr.Prog.env.Sema.routine in
  (* pre-create slots for declared scalars so types are right *)
  List.iter
    (fun (v : Decl.vdecl) ->
      if v.Decl.vdims = [] then ignore (slot_for renv v.Decl.vname ~ty:v.Decl.vty)
      else ignore (arr_slot renv v.Decl.vname))
    r.Decl.rdecls;
  let bodyc = compile_body renv pr.Prog.code.Decl.rbody in
  (* formal binding plan *)
  let formal_plan =
    List.map
      (fun p ->
        match Sema.find_sym pr.Prog.env p with
        | Some (Sema.SArray ai) ->
            (* dim expressions may reference formal scalars (adjustable) *)
            let dimfs =
              List.map2
                (fun lo hi ->
                  (fst (compile_i renv lo), fst (compile_i renv hi)))
                ai.Sema.ai_los ai.Sema.ai_his
            in
            let kinds =
              Option.map
                (fun (d : Decl.dist) -> Array.of_list d.Decl.dkinds)
                ai.Sema.ai_dist
            in
            `Array (p, arr_slot renv p, ai.Sema.ai_ty, dimfs, kinds)
        | Some (Sema.SScalar (ty, _)) -> `Scalar (p, slot_for renv p ~ty, ty)
        | _ -> Eff.error "routine %s: formal %s undeclared" name p)
      r.Decl.rparams
  in
  (* static template for non-formal arrays *)
  let formals_set = r.Decl.rparams in
  let template = Array.make (max 1 renv.na) Frame.dummy_abind in
  Hashtbl.iter
    (fun aname slot ->
      if not (List.mem aname formals_set) then
        match g.static_abind ~routine:name ~array:aname with
        | Some ab -> template.(slot) <- ab
        | None -> ())
    renv.aslots;
  let n_arr = max 1 renv.na in
  fun ws argv ->
    ignore n_arr;
    let frame =
      Frame.create ~n_int:renv.ni ~n_float:renv.nf ~arrays:(Array.copy template)
    in
    let ctx = { ws; frame } in
    (* bind scalars first (adjustable array dims may need them) *)
    List.iter2
      (fun plan arg ->
        match (plan, arg) with
        | `Scalar (_, SInt i, _), Ai v -> frame.Frame.ints.(i) <- v
        | `Scalar (_, SInt i, _), Af v -> frame.Frame.ints.(i) <- int_of_float v
        | `Scalar (_, SFloat i, _), Af v -> frame.Frame.floats.(i) <- v
        | `Scalar (_, SFloat i, _), Ai v -> frame.Frame.floats.(i) <- float_of_int v
        | `Scalar (p, _, _), _ -> Eff.error "%s: argument %s: scalar expected" name p
        | `Array _, _ -> ())
      formal_plan argv;
    (* then bind arrays *)
    List.iter2
      (fun plan arg ->
        match plan with
        | `Scalar _ -> ()
        | `Array (p, aslot, fty, dimfs, kinds) -> (
            let lowers = Array.of_list (List.map (fun (lo, _) -> lo ctx) dimfs) in
            let his = Array.of_list (List.map (fun (_, hi) -> hi ctx) dimfs) in
            let extents = Array.map2 (fun h l -> h - l + 1) his lowers in
            let strides =
              let st = Array.make (Array.length extents) 1 in
              for i = 1 to Array.length extents - 1 do
                st.(i) <- st.(i - 1) * extents.(i - 1)
              done;
              st
            in
            match arg with
            | Awhole ab ->
                let ab' =
                  match ab.Frame.ab_darr with
                  | Some d when d.Darray.reshaped ->
                      (* reshaped whole-array pass: keep the descriptor *)
                      ab
                  | _ ->
                      {
                        ab with
                        Frame.ab_lowers = lowers;
                        ab_strides = strides;
                        ab_extents = extents;
                        ab_ty = fty;
                      }
                in
                frame.Frame.arrays.(aslot) <- ab';
                if g.checks then begin
                  charge Costs.argcheck_lookup ws;
                  match
                    Argcheck.check_entry g.rt.Rt.argcheck ~addr:ab'.Frame.ab_base
                      ~name:p ~formal_extents:extents ?formal_kinds:kinds ()
                  with
                  | Ok () -> ()
                  | Error m -> Eff.error "%s" m
                end
            | Aelem (addr, _aty) ->
                frame.Frame.arrays.(aslot) <-
                  {
                    Frame.ab_darr = None;
                    ab_base = addr;
                    ab_lowers = lowers;
                    ab_strides = strides;
                    ab_extents = extents;
                    ab_ty = fty;
                  };
                if g.checks then begin
                  charge Costs.argcheck_lookup ws;
                  match
                    Argcheck.check_entry g.rt.Rt.argcheck ~addr ~name:p
                      ~formal_extents:extents ?formal_kinds:kinds ()
                  with
                  | Ok () -> ()
                  | Error m -> Eff.error "%s" m
                end
            | Ai _ | Af _ ->
                Eff.error "%s: argument %s: array expected" name p))
      formal_plan argv;
    try bodyc ctx with Return_local -> ()

let compile_all g =
  Prog.iter g.prog (fun name pr ->
      Hashtbl.replace g.entries name (compile_routine g name pr))

let run_main g ws =
  match Hashtbl.find_opt g.entries g.prog.Prog.main with
  | Some entry -> entry ws []
  | None -> Eff.error "main routine %s not compiled" g.prog.Prog.main
