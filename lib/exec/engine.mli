(** The execution engine: elaborates the program's static storage against
    the runtime (allocating every declared array, applying distribution
    directives exactly as the paper's start-up code does), compiles all
    routines, and then runs the program unit on simulated processor 0.

    Workers are effect-based coroutines scheduled strictly by minimum local
    clock, so memory-system events (directory transactions, memory-module
    queueing) happen in global simulated-time order and runs are
    deterministic. A [Par] region forks one worker per simulated processor
    and joins at the maximum child clock — the doacross's implicit
    barrier. *)

type outcome = {
  cycles : int;  (** program-unit completion time in simulated cycles *)
  prints : string list;
  counters : Ddsm_machine.Counters.t;  (** machine-wide totals *)
  per_proc : Ddsm_machine.Counters.t array;
}

val run :
  Prog.t ->
  rt:Ddsm_runtime.Rt.t ->
  ?checks:bool ->
  ?bounds:bool ->
  ?max_cycles:int ->
  ?audit:bool ->
  ?stall_limit:int ->
  ?shards:int ->
  ?profile:Ddsm_report.Profile.t ->
  ?sanitize:Ddsm_sanitize.Sanitize.t ->
  unit ->
  (outcome, Ddsm_check.Diag.t) result
(** [checks] enables the §6 runtime argument checks (default true);
    [bounds] enables subscript bounds checking on plain array views
    (default false); [max_cycles] aborts runaway programs.

    Failures are structured diagnoses ({!Ddsm_check.Diag.t}): user errors,
    cycle-budget exhaustion, deadlock (with the blocked-task tree and
    per-processor clocks), watchdog stalls ([stall_limit] scheduler steps
    without any clock advancing), and internal invariant violations —
    [Invalid_argument]/[Failure] escaping a simulated task are reported as
    [Internal], never disguised as user errors; the same exceptions raised
    outside the scheduler propagate to the caller.

    [shards] (default 1) runs the simulation sharded across that many
    worker domains (clamped to \[1, 64\]): simulated processor [p]'s
    interpreter segments execute on shard [p mod shards] while one
    coordinator serializes every memory-system commit in exact event
    order, so the outcome — memory image, prints, cycles, counters,
    profile attribution, sanitizer reports — is byte-identical to the
    sequential engine (DESIGN.md §11 gives the argument).  The only
    sanctioned divergence is on *failing* runs: segments already
    dispatched past the failing event have advanced private clocks and
    heap words the sequential engine never would, so diagnostic clock
    dumps and the (never-compared) memory image of an [Error] run may
    differ; the [Diag] code and everything already committed do not.
    [1] keeps the sequential scheduler, byte for byte.

    [audit] (default false) runs the full invariant audit ({!Rt.audit})
    after a successful run and fails with [Audit_failure] listing the
    violations if the machine state is inconsistent.

    [profile] attaches a cycle-attribution profiler
    ({!Ddsm_report.Profile}): every memory access is attributed to the
    executing parallel region and the owning array, and scheduler/runtime
    events (region enter/exit, barriers, redistributions, fault injections,
    watchdog trips) are appended to its bounded event trace. The machine
    probe and runtime hook are detached again before [run] returns.

    [sanitize] attaches a happens-before sanitizer
    ({!Ddsm_sanitize.Sanitize}): the same access probe feeds its race
    detector, and fork/join/barrier/redistribution events provide its
    happens-before edges. Composes with [profile] (both observe every
    access). With neither attached no probe is installed — the fast path
    is untouched. *)

val elaborate : Prog.t -> rt:Ddsm_runtime.Rt.t -> unit
(** Allocate static storage only (exposed for tests). Raises
    {!Eff.Runtime_error} on inconsistent common blocks. *)
