(** Worker state and the effects through which compiled code talks to the
    scheduler. Each simulated processor runs as an effect-based coroutine:
    compute advances its private clock directly; memory accesses and
    parallel-region forks are performed as effects so the engine can order
    them globally by simulated time. *)

type ws = {
  proc : int;  (** simulated processor executing this coroutine *)
  mutable clock : int;  (** local cycle count *)
  depth : int;  (** nesting depth of parallel regions (0 = serial) *)
}

type _ Effect.t +=
  | Mem : ws * int * bool -> unit Effect.t
      (** [(ws, word_addr, is_write)]: one-word access; the handler charges
          the latency to [ws.clock] *)
  | Fork : ws * (ws -> int -> unit) * int * string * bool -> unit Effect.t
      (** [(ws, body, n, region, shardable)]: run [body child_ws p] for
          [p = 0..n-1] as child coroutines; resume the parent at the
          children's max clock.  [region] is a human-readable
          parallel-region label (["routine:line"]) used by the
          cycle-attribution profiler.  [shardable] is a compile-time
          promise that the body's only effects are [Mem] plus prints —
          no calls, barriers or redistributions — so the sharded engine
          may run its segments on worker domains (see DESIGN.md §11);
          [false] forces the children onto the coordinator. *)

exception Runtime_error of string
(** A user-program error (bad arguments, bounds, inconsistent commons…). *)

exception Cycle_limit of int
(** The simulated clock passed the run's cycle budget (the budget is the
    payload) — a resource bound, not a program error; the engine turns it
    into a structured diagnosis. *)

val error : ('a, unit, string, 'b) format4 -> 'a
