(* Entries carry a monotonic push sequence number so equal keys pop in
   push (FIFO) order: the scheduler's tie-breaking is then deterministic by
   construction instead of depending on sift-up/sift-down accidents.

   Keys, sequence numbers and payloads live in parallel arrays so a
   push/pop cycle allocates nothing — the scheduler does one per simulated
   memory access that isn't fast-continued, so entry boxes would be churn
   on the hot path. *)
type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array; (* length 0 until the first push *)
  mutable n : int;
  mutable seq : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; n = 0; seq = 0 }
let is_empty t = t.n = 0
let size t = t.n

(* move the slot contents of [j] into [i] (heap-internal, both < n) *)
let shift t ~dst ~src =
  Array.unsafe_set t.keys dst (Array.unsafe_get t.keys src);
  Array.unsafe_set t.seqs dst (Array.unsafe_get t.seqs src);
  Array.unsafe_set t.vals dst (Array.unsafe_get t.vals src)

let put t i ~key ~seq v =
  Array.unsafe_set t.keys i key;
  Array.unsafe_set t.seqs i seq;
  Array.unsafe_set t.vals i v

let grow t v =
  let cap = Array.length t.keys in
  if t.n >= cap then begin
    let cap' = max 16 (2 * cap) in
    let keys' = Array.make cap' 0 and seqs' = Array.make cap' 0 in
    let vals' = Array.make cap' v in
    Array.blit t.keys 0 keys' 0 t.n;
    Array.blit t.seqs 0 seqs' 0 t.n;
    Array.blit t.vals 0 vals' 0 t.n;
    t.keys <- keys';
    t.seqs <- seqs';
    t.vals <- vals'
  end

(* hole-style sift-up: walk the hole toward the root shifting parents down,
   store the new element once at its final slot (no pairwise swaps) *)
let push t ~key v =
  grow t v;
  let seq = t.seq in
  t.seq <- seq + 1;
  let i = ref t.n in
  t.n <- t.n + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let p = (!i - 1) / 2 in
    let kp = Array.unsafe_get t.keys p in
    (* seqs are monotonic, so the new element never precedes an equal key *)
    if key < kp then begin
      shift t ~dst:!i ~src:p;
      i := p
    end
    else continue_ := false
  done;
  put t !i ~key ~seq v

let min_key t = if t.n = 0 then max_int else t.keys.(0)

let pop_value t =
  if t.n = 0 then invalid_arg "Heapq.pop_value: empty";
  let top = t.vals.(0) in
  t.n <- t.n - 1;
  let n = t.n in
  (* hole-style sift-down of the last element: move smaller children up
     into the hole, store the element once where it lands.
     note: vals.(n) keeps its (now stale) reference until overwritten by a
     later push; payloads here are scheduler tasks that outlive the queue
     entry anyway *)
  if n > 0 then begin
    let key = Array.unsafe_get t.keys n
    and seq = Array.unsafe_get t.seqs n
    and v = Array.unsafe_get t.vals n in
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 in
      if l >= n then continue_ := false
      else begin
        let r = l + 1 in
        let c =
          if r < n then begin
            let kl = Array.unsafe_get t.keys l
            and kr = Array.unsafe_get t.keys r in
            if
              kr < kl
              || (kr = kl && Array.unsafe_get t.seqs r < Array.unsafe_get t.seqs l)
            then r
            else l
          end
          else l
        in
        let kc = Array.unsafe_get t.keys c in
        if kc < key || (kc = key && Array.unsafe_get t.seqs c < seq) then begin
          shift t ~dst:!i ~src:c;
          i := c
        end
        else continue_ := false
      end
    done;
    put t !i ~key ~seq v
  end;
  top

let pop t =
  if t.n = 0 then None
  else
    let key = t.keys.(0) in
    Some (key, pop_value t)
