(* Entries carry a monotonic push sequence number so equal keys pop in
   push (FIFO) order: the scheduler's tie-breaking is then deterministic by
   construction instead of depending on sift-up/sift-down accidents. *)
type 'a entry = { key : int; seq : int; v : 'a }
type 'a t = { mutable arr : 'a entry array; mutable n : int; mutable seq : int }

let create () = { arr = [||]; n = 0; seq = 0 }
let is_empty t = t.n = 0
let size t = t.n

(* lexicographic (key, seq) *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t item =
  let cap = Array.length t.arr in
  if t.n >= cap then begin
    let arr' = Array.make (max 16 (2 * cap)) item in
    Array.blit t.arr 0 arr' 0 t.n;
    t.arr <- arr'
  end

let push t ~key v =
  let e = { key; seq = t.seq; v } in
  t.seq <- t.seq + 1;
  grow t e;
  t.arr.(t.n) <- e;
  let i = ref t.n in
  t.n <- t.n + 1;
  while !i > 0 && before t.arr.(!i) t.arr.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = t.arr.(p) in
    t.arr.(p) <- t.arr.(!i);
    t.arr.(!i) <- tmp;
    i := p
  done

let pop t =
  if t.n = 0 then None
  else begin
    let top = t.arr.(0) in
    t.n <- t.n - 1;
    t.arr.(0) <- t.arr.(t.n);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.n && before t.arr.(l) t.arr.(!smallest) then smallest := l;
      if r < t.n && before t.arr.(r) t.arr.(!smallest) then smallest := r;
      if !smallest = !i then continue_ := false
      else begin
        let tmp = t.arr.(!smallest) in
        t.arr.(!smallest) <- t.arr.(!i);
        t.arr.(!i) <- tmp;
        i := !smallest
      end
    done;
    Some (top.key, top.v)
  end
