(** Minimal binary min-heap of (key, payload) pairs, used by the scheduler
    to pick the runnable simulated processor with the smallest local clock.

    {b Ordering.} [pop] returns entries in non-decreasing key order, and
    entries with {e equal} keys in push (FIFO) order — ties are broken by a
    monotonic sequence number stamped at [push]. The scheduler's
    interleaving of same-cycle events is therefore a deterministic function
    of the push history, not of heap-internal layout. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> key:int -> 'a -> unit
val pop : 'a t -> (int * 'a) option

val min_key : 'a t -> int
(** Smallest queued key without popping it, or [max_int] on an empty heap
    (so "strictly before everything queued" is one comparison, no
    allocation). *)

val pop_value : 'a t -> 'a
(** Allocation-free pop: the payload of the smallest (key, seq) entry.
    Read the key first with {!min_key}. @raise Invalid_argument if empty. *)

val is_empty : 'a t -> bool
val size : 'a t -> int
