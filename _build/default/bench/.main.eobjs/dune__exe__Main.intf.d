bench/main.mli:
