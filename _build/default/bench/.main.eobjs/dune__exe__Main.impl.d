bench/main.ml: Analyze Array Bechamel Benchmark Ddsm_core Ddsm_machine Ddsm_report Float Format Harness Hashtbl Instance List Measure Option Printf Staged Sys Test Time Toolkit Unix Workloads
