bench/workloads.ml: Ddsm_machine Printf
