bench/harness.ml: Ddsm_core Ddsm_machine Ddsm_report Ddsm_runtime Format List String Workloads
