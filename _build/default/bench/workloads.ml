(* Workload generators: the paper's three evaluation programs (§8), written
   in the directive language, parameterized by problem size, iteration count
   and data-placement version.

   The four versions match §8's experimental setup:
   - First_touch / Round_robin: no distribution directives; placement comes
     from the OS policy alone (and from which processor initializes the
     data: LU initializes in parallel, transpose and convolution serially);
   - Regular:  c$distribute   (page placement only);
   - Reshaped: c$distribute_reshape (layout changed, Table 1 addressing). *)

type version = First_touch | Round_robin | Regular | Reshaped

let version_label = function
  | First_touch -> "first-touch"
  | Round_robin -> "round-robin"
  | Regular -> "regular"
  | Reshaped -> "reshaped"

let policy_of = function
  | Round_robin -> Ddsm_machine.Pagetable.Round_robin
  | _ -> Ddsm_machine.Pagetable.First_touch

(* distribution directive line (or nothing) for a given version *)
let dist_line version spec =
  match version with
  | First_touch | Round_robin -> ""
  | Regular -> Printf.sprintf "c$distribute %s" spec
  | Reshaped -> Printf.sprintf "c$distribute_reshape %s" spec

(* an affinity clause is only legal when the array is distributed *)
let affinity version clause =
  match version with First_touch | Round_robin -> "" | _ -> " " ^ clause

(* ------------------------------------------------------------------ *)
(* Matrix transpose (§8.2, Figure 5): A(j,i) = B(i,j) with
   A ( *, block) and B (block, * ); data initialized serially. *)

let transpose ~n ~iters version =
  Printf.sprintf
    {|
      program transp
      integer n, i, j, it
      parameter (n = %d)
      real*8 a(n, n), b(n, n)
%s
      do j = 1, n
        do i = 1, n
          b(i, j) = i + j * 0.5
        enddo
      enddo
      do it = 1, %d
c$doacross local(i, j)
        do i = 1, n
          do j = 1, n
            a(j, i) = b(i, j)
          enddo
        enddo
      enddo
      print *, a(1, 1)
      end
|}
    n
    (dist_line version "a(*, block), b(block, *)")
    iters

(* ------------------------------------------------------------------ *)
(* 2-D convolution (§8.3, Figures 6 and 7): 5-point stencil, serial
   initialization. One level of parallelism with ( *, block), or two levels
   with (block, block) and a nest clause. *)

let convolution ~n ~iters ~two_level version =
  if two_level then
    Printf.sprintf
      {|
      program conv2
      integer n, i, j, it
      parameter (n = %d)
      real*8 a(n, n), b(n, n)
%s
      do j = 1, n
        do i = 1, n
          b(i, j) = i + 2 * j
          a(i, j) = 0.0
        enddo
      enddo
      do it = 1, %d
c$doacross nest(j, i) local(i, j)%s
        do j = 2, n-1
          do i = 2, n-1
            a(i,j) = (b(i-1,j) + b(i,j-1) + b(i,j) + b(i,j+1) + b(i+1,j)) / 5.0
          enddo
        enddo
      enddo
      print *, a(2, 2)
      end
|}
      n
      (dist_line version "a(block, block), b(block, block)")
      iters
      (affinity version "affinity(j, i) = data(a(i, j))")
  else
    Printf.sprintf
      {|
      program conv1
      integer n, i, j, it
      parameter (n = %d)
      real*8 a(n, n), b(n, n)
%s
      do j = 1, n
        do i = 1, n
          b(i, j) = i + 2 * j
          a(i, j) = 0.0
        enddo
      enddo
      do it = 1, %d
c$doacross local(i, j)%s
        do j = 2, n-1
          do i = 2, n-1
            a(i,j) = (b(i-1,j) + b(i,j-1) + b(i,j) + b(i,j+1) + b(i+1,j)) / 5.0
          enddo
        enddo
      enddo
      print *, a(2, 2)
      end
|}
      n
      (dist_line version "a(*, block), b(*, block)")
      iters
      (affinity version "affinity(j) = data(a(2, j))")

(* ------------------------------------------------------------------ *)
(* LU / SSOR kernel (§8.1, Table 2 and Figure 4): two 4-dimensional arrays
   u, r of shape (5, n, n, n) distributed ( *, block, block, * ) — the
   paper's NAS-LU data layout — swept by an SSOR-like stencil update.
   Data is initialized in parallel (the paper notes this explicitly). *)

let lu ~n ~iters version =
  Printf.sprintf
    {|
      program lu
      integer n, i, j, k, m, it
      parameter (n = %d)
      real*8 u(5, n, n, n), r(5, n, n, n)
%s
c$doacross nest(j, i) local(i, j, k, m)%s
      do j = 1, n
        do i = 1, n
          do k = 1, n
            do m = 1, 5
              u(m, i, j, k) = m + i * 0.5 + j * 0.25 + k * 0.125
              r(m, i, j, k) = 0.0
            enddo
          enddo
        enddo
      enddo
      do it = 1, %d
c$doacross nest(j, i) local(i, j, k, m)%s
        do j = 2, n-1
          do i = 2, n-1
            do k = 2, n-1
              do m = 1, 5
                r(m,i,j,k) = (u(m,i-1,j,k) + u(m,i+1,j,k) + u(m,i,j-1,k) + u(m,i,j+1,k) + u(m,i,j,k-1) + u(m,i,j,k+1)) / 6.0
              enddo
            enddo
          enddo
        enddo
c$doacross nest(j, i) local(i, j, k, m)%s
        do j = 2, n-1
          do i = 2, n-1
            do k = 2, n-1
              do m = 1, 5
                u(m,i,j,k) = u(m,i,j,k) + 0.2 * (r(m,i,j,k) - u(m,i,j,k))
              enddo
            enddo
          enddo
        enddo
      enddo
      print *, u(1, 2, 2, 2)
      end
|}
    n
    (dist_line version "u(*, block, block, *), r(*, block, block, *)")
    (affinity version "affinity(j, i) = data(u(1, i, j, 1))")
    iters
    (affinity version "affinity(j, i) = data(u(1, i, j, 1))")
    (affinity version "affinity(j, i) = data(u(1, i, j, 1))")
