(* Structural tests for the compiler transformation passes: scheduling,
   tiling/peeling, reference lowering, hoisting, CSE, div/mod selection.
   (Semantic equivalence against the unoptimized code is tested end-to-end
   in test_exec.ml.) *)

open Ddsm_ir
open Ddsm_frontend
open Ddsm_sema
open Ddsm_transform

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile ?(flags = Flags.all_on) src =
  match Parser.parse_file ~fname:"t.pf" src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok f -> (
      match Sema.analyse_file f with
      | Error es -> Alcotest.failf "sema: %s" (String.concat "; " es)
      | Ok envs -> List.map (Pipeline.run flags) envs)

let main_routine rs = List.hd rs

(* --- small expression census over a routine --- *)
let census (r : Decl.routine) =
  let doacross = ref 0
  and par = ref 0
  and hw_div = ref 0
  and fp_div = ref 0
  and meta = ref 0
  and baseof = ref 0
  and absload = ref 0
  and reshref = ref 0 in
  let rec go t =
    (match t.Stmt.s with
    | Stmt.Doacross _ -> incr doacross
    | Stmt.Par _ -> incr par
    | _ -> ());
    Stmt.iter_exprs
      (fun e ->
        Expr.iter
          (function
            | Expr.Idiv (Expr.Hw, _, _) | Expr.Imod (Expr.Hw, _, _) -> incr hw_div
            | Expr.Idiv (Expr.Fp, _, _) | Expr.Imod (Expr.Fp, _, _) -> incr fp_div
            | Expr.Meta _ -> incr meta
            | Expr.BaseOf _ -> incr baseof
            | Expr.AbsLoad _ -> incr absload
            | Expr.Ref _ -> incr reshref
            | _ -> ())
          e)
      t;
    match t.Stmt.s with
    | Stmt.Do d -> List.iter go d.Stmt.body
    | Stmt.If (_, a, b) ->
        List.iter go a;
        List.iter go b
    | Stmt.Par p -> List.iter go p.Stmt.pbody
    | Stmt.Doacross da -> List.iter go da.Stmt.loop.Stmt.body
    | _ -> ()
  in
  List.iter go r.Decl.rbody;
  (!doacross, !par, !hw_div, !fp_div, !meta, !baseof, !absload, !reshref)

(* count dynamic-position div/mod inside the innermost loops only *)
let rec innermost_divmod (ts : Stmt.t list) =
  List.fold_left
    (fun acc t ->
      match t.Stmt.s with
      | Stmt.Do d ->
          let inner_loops =
            List.exists
              (fun s -> match s.Stmt.s with Stmt.Do _ -> true | _ -> false)
              d.Stmt.body
          in
          if inner_loops then acc + innermost_divmod d.Stmt.body
          else
            let n = ref 0 in
            List.iter
              (fun s ->
                Stmt.iter_exprs
                  (fun e ->
                    Expr.iter
                      (function
                        | Expr.Idiv _ | Expr.Imod _ -> incr n
                        | _ -> ())
                      e)
                  s)
              d.Stmt.body;
            acc + !n
      | Stmt.Par p -> acc + innermost_divmod p.Stmt.pbody
      | Stmt.If (_, a, b) -> acc + innermost_divmod a + innermost_divmod b
      | _ -> acc)
    0 ts

(* does some innermost loop contain no div/mod at all? *)
let innermost_clean_exists (ts : Stmt.t list) =
  let found = ref false in
  let rec go t =
    match t.Stmt.s with
    | Stmt.Do d ->
        let has_inner =
          List.exists (fun s -> match s.Stmt.s with Stmt.Do _ -> true | _ -> false) d.Stmt.body
        in
        if has_inner then List.iter go d.Stmt.body
        else begin
          let n = ref 0 in
          List.iter
            (fun s ->
              Stmt.iter_exprs
                (fun e ->
                  Expr.iter
                    (function Expr.Idiv _ | Expr.Imod _ -> incr n | _ -> ())
                    e)
                s)
            d.Stmt.body;
          if !n = 0 then found := true
        end
    | Stmt.Par p -> List.iter go p.Stmt.pbody
    | Stmt.If (_, a, b) ->
        List.iter go a;
        List.iter go b
    | _ -> ()
  in
  List.iter go ts;
  !found

let simple_src =
  {|
      program p
      integer n, i
      parameter (n = 1000)
      real*8 a(n)
c$distribute_reshape a(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = i
      enddo
      end
|}

let test_doacross_becomes_par () =
  let r = main_routine (compile simple_src) in
  let doacross, par, _, _, _, _, _, _ = census r in
  check_int "no doacross left" 0 doacross;
  check_int "one par region" 1 par

let test_refs_lowered () =
  let r = main_routine (compile simple_src) in
  let _, _, _, _, _, baseof, absload, reshref = census r in
  check_bool "base pointer load present" true (baseof >= 1);
  check_bool "stores lowered" true (absload >= 0);
  check_int "no reshaped Ref remains" 0 reshref

let test_no_divmod_in_inner_loop_when_optimized () =
  let r = main_routine (compile ~flags:Flags.all_on simple_src) in
  check_int "optimized inner loop has no div/mod" 0 (innermost_divmod r.Decl.rbody)

let test_unoptimized_has_divmod () =
  let r = main_routine (compile ~flags:Flags.all_off simple_src) in
  check_bool "unoptimized inner loop has div or mod" true
    (innermost_divmod r.Decl.rbody > 0)

let test_fp_divmod_flag () =
  let _, _, hw, fp, _, _, _, _ =
    census (main_routine (compile ~flags:Flags.all_off simple_src))
  in
  check_bool "all_off uses hw div" true (hw > 0 && fp = 0);
  let _, _, _hw2, fp2, _, _, _, _ =
    census (main_routine (compile ~flags:{ Flags.all_off with Flags.fp_divmod = true } simple_src))
  in
  check_bool "fp flag switches implementation" true (fp2 > 0)

let stencil_src =
  {|
      program p
      integer n, i
      parameter (n = 1000)
      real*8 a(n), b(n)
c$distribute_reshape a(block), b(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 2, n-1
        a(i) = (b(i-1) + b(i) + b(i+1)) / 3
      enddo
      end
|}

let count_loops_under_par (r : Decl.routine) =
  let n = ref 0 in
  let rec go t =
    (match t.Stmt.s with Stmt.Do _ -> incr n | _ -> ());
    match t.Stmt.s with
    | Stmt.Do d -> List.iter go d.Stmt.body
    | Stmt.If (_, a, b) ->
        List.iter go a;
        List.iter go b
    | Stmt.Par p -> List.iter go p.Stmt.pbody
    | _ -> ()
  in
  List.iter go r.Decl.rbody;
  !n

let test_peeling_splits_loop () =
  let with_peel = main_routine (compile ~flags:Flags.all_on stencil_src) in
  let without_peel =
    main_routine
      (compile ~flags:{ Flags.all_on with Flags.peel = false } stencil_src)
  in
  check_bool "peeling creates extra loops" true
    (count_loops_under_par with_peel > count_loops_under_par without_peel);
  (* and the peeled version has a div/mod-free interior loop *)
  check_bool "an interior loop is clean" true
    (innermost_clean_exists with_peel.Decl.rbody)

let test_no_peel_keeps_neighbours_general () =
  let r =
    main_routine (compile ~flags:{ Flags.all_on with Flags.peel = false } stencil_src)
  in
  (* without peeling, b(i-1)/b(i+1) must keep general (div/mod) addressing *)
  check_bool "neighbour refs stay general" true (innermost_divmod r.Decl.rbody > 0)

let serial_tile_src =
  {|
      program p
      integer n, i
      parameter (n = 1000)
      real*8 a(n)
c$distribute_reshape a(block)
      do i = 1, n
        a(i) = i
      enddo
      end
|}

let test_serial_tiling () =
  let tiled = main_routine (compile ~flags:Flags.all_on serial_tile_src) in
  check_int "tiled serial loop is div/mod free inside" 0
    (innermost_divmod tiled.Decl.rbody);
  let untiled = main_routine (compile ~flags:Flags.all_off serial_tile_src) in
  check_bool "untiled pays div/mod" true (innermost_divmod untiled.Decl.rbody > 0)

let transpose_src =
  {|
      program p
      integer n, i, j
      parameter (n = 200)
      real*8 a(n, n), b(n, n)
c$distribute_reshape a(*, block), b(block, *)
c$doacross local(i, j)
      do i = 1, n
        do j = 1, n
          a(j, i) = b(i, j)
        enddo
      enddo
      end
|}

let test_transpose_both_arrays_reduced () =
  (* the i loop anchors A's dim 2 and coincides with B's dim 1 (both are the
     only distributed dimension of equal extent), so both references are
     strength-reduced *)
  let r = main_routine (compile ~flags:Flags.all_on transpose_src) in
  check_int "transpose interior is div/mod free" 0 (innermost_divmod r.Decl.rbody)

let skew_src =
  {|
      program p
      integer n, i, k
      parameter (n = 1000)
      real*8 a(n)
c$distribute_reshape a(block)
      k = 7
      do i = 1, n - 2*k
        a(i + 2*k) = i
      enddo
      end
|}

let test_skewing_enables_tiling () =
  (* with skewing the loop is tiled and its interior is div/mod free *)
  let skewed = main_routine (compile ~flags:Flags.all_on skew_src) in
  check_int "skewed interior clean" 0 (innermost_divmod skewed.Decl.rbody);
  (* without skewing the symbolic offset defeats tiling *)
  let unskewed =
    main_routine (compile ~flags:{ Flags.all_on with Flags.skew = false } skew_src)
  in
  check_bool "no skew -> div/mod remain" true
    (innermost_divmod unskewed.Decl.rbody > 0)

let test_hoist_moves_meta_out () =
  let no_hoist =
    main_routine (compile ~flags:{ Flags.all_on with Flags.hoist = false; cse = false } simple_src)
  in
  let hoist = main_routine (compile ~flags:Flags.all_on simple_src) in
  (* count Meta/BaseOf occurrences inside innermost loops *)
  let rec inner_meta ts =
    List.fold_left
      (fun acc t ->
        match t.Stmt.s with
        | Stmt.Do d ->
            let has_inner =
              List.exists (fun s -> match s.Stmt.s with Stmt.Do _ -> true | _ -> false) d.Stmt.body
            in
            if has_inner then acc + inner_meta d.Stmt.body
            else
              let n = ref 0 in
              List.iter
                (fun s ->
                  Stmt.iter_exprs
                    (fun e ->
                      Expr.iter
                        (function Expr.Meta _ | Expr.BaseOf _ -> incr n | _ -> ())
                        e)
                    s)
                d.Stmt.body;
              acc + !n
        | Stmt.Par p -> acc + inner_meta p.Stmt.pbody
        | Stmt.If (_, a, b) -> acc + inner_meta a + inner_meta b
        | _ -> acc)
      0 ts
  in
  check_bool "hoisting empties innermost loops of meta loads" true
    (inner_meta hoist.Decl.rbody < inner_meta no_hoist.Decl.rbody);
  check_int "fully hoisted" 0 (inner_meta hoist.Decl.rbody)

let test_cse_dedups () =
  (* same reshaped element read twice in one statement: CSE shares the
     address computation *)
  let src =
    {|
      program p
      integer n, i
      parameter (n = 100)
      real*8 a(n), s
c$distribute_reshape a(cyclic)
      s = 0.0
      do i = 1, n
        s = a(i) * a(i)
      enddo
      end
|}
  in
  let with_cse =
    main_routine (compile ~flags:{ Flags.all_off with Flags.cse = true } src)
  in
  let without =
    main_routine (compile ~flags:Flags.all_off src)
  in
  let _, _, hw_with, _, _, _, _, _ = census with_cse in
  let _, _, hw_without, _, _, _, _, _ = census without in
  check_bool "CSE reduced static div/mod count" true (hw_with < hw_without)

let test_cyclic_figure2 () =
  let src =
    {|
      program p
      integer n, i
      parameter (n = 100)
      real*8 a(n)
c$distribute a(cyclic)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = i
      enddo
      end
|}
  in
  let r =
    main_routine (compile ~flags:{ Flags.all_on with Flags.cse = false } src)
  in
  (* the scheduled loop must step by P (a Meta procs expression) *)
  let found = ref false in
  let rec go t =
    match t.Stmt.s with
    | Stmt.Do d ->
        (match d.Stmt.step with
        | Some (Expr.Meta (_, Expr.Procs _)) -> found := true
        | _ -> ());
        List.iter go d.Stmt.body
    | Stmt.Par p -> List.iter go p.Stmt.pbody
    | Stmt.If (_, a, b) ->
        List.iter go a;
        List.iter go b
    | _ -> ()
  in
  List.iter go r.Decl.rbody;
  check_bool "cyclic loop steps by P" true !found

let test_interchange_bubbles_ptile () =
  (* serial nest over a column-distributed array: the j loop tiles, and the
     ptile loop should bubble above the i loop inside the Par region of an
     enclosing simple doacross... use a serial nest in a doacross region *)
  let src =
    {|
      program p
      integer n, i, j
      parameter (n = 100)
      real*8 a(n, n)
c$distribute_reshape a(block, *)
c$doacross local(i, j)
      do j = 1, n
        do i = 1, n
          a(i, j) = i + j
        enddo
      enddo
      end
|}
  in
  let flags = Flags.all_on in
  let r = main_routine (compile ~flags src) in
  (* find a ptile loop that directly contains a data loop (interchanged) *)
  let found = ref false in
  let rec go t =
    match t.Stmt.s with
    | Stmt.Do d ->
        (if String.length d.Stmt.var >= 5 && String.sub d.Stmt.var 0 5 = "ptile"
         then
           List.iter
             (fun s ->
               match s.Stmt.s with
               | Stmt.Do inner
                 when not
                        (String.length inner.Stmt.var >= 5
                        && String.sub inner.Stmt.var 0 5 = "ptile") ->
                   found := true
               | _ -> ())
             d.Stmt.body);
        List.iter go d.Stmt.body
    | Stmt.Par p -> List.iter go p.Stmt.pbody
    | Stmt.If (_, a, b) ->
        List.iter go a;
        List.iter go b
    | _ -> ()
  in
  List.iter go r.Decl.rbody;
  check_bool "a ptile loop directly wraps a data loop" !found true

let () =
  Alcotest.run "transform"
    [
      ( "lowering",
        [
          Alcotest.test_case "doacross -> Par" `Quick test_doacross_becomes_par;
          Alcotest.test_case "reshaped refs lowered" `Quick test_refs_lowered;
          Alcotest.test_case "cyclic schedule (Figure 2)" `Quick test_cyclic_figure2;
        ] );
      ( "tiling",
        [
          Alcotest.test_case "optimized inner loop div/mod free" `Quick
            test_no_divmod_in_inner_loop_when_optimized;
          Alcotest.test_case "unoptimized pays div/mod" `Quick test_unoptimized_has_divmod;
          Alcotest.test_case "peeling" `Quick test_peeling_splits_loop;
          Alcotest.test_case "no-peel keeps neighbours general" `Quick
            test_no_peel_keeps_neighbours_general;
          Alcotest.test_case "serial tiling" `Quick test_serial_tiling;
          Alcotest.test_case "transpose coincident groups" `Quick
            test_transpose_both_arrays_reduced;
          Alcotest.test_case "interchange bubbles ptile loops" `Quick
            test_interchange_bubbles_ptile;
          Alcotest.test_case "skewing enables tiling" `Quick test_skewing_enables_tiling;
        ] );
      ( "scalar opts",
        [
          Alcotest.test_case "hoisting" `Quick test_hoist_moves_meta_out;
          Alcotest.test_case "CSE" `Quick test_cse_dedups;
          Alcotest.test_case "fp div/mod flag" `Quick test_fp_divmod_flag;
        ] );
    ]
