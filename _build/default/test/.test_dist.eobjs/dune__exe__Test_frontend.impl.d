test/test_frontend.ml: Alcotest Ddsm_dist Ddsm_frontend Ddsm_ir Decl Expr Format Lexer List Option Parser Stmt String Token
