test/test_runtime.ml: Alcotest Argcheck Config Darray Ddsm_dist Ddsm_machine Ddsm_runtime Gen Hashtbl Heap Kind Layout List Memsys Option Pagetable Pools Printf QCheck QCheck_alcotest Result Rt
