test/test_random.ml: Alcotest Ddsm_dist Ddsm_exec Ddsm_frontend Ddsm_ir Ddsm_machine Ddsm_runtime Ddsm_sema Ddsm_transform Engine Flags List Parser Pipeline Printf Prog QCheck Random Sema String
