test/test_machine.ml: Alcotest Array Bitset Cache Config Counters Ddsm_machine Directory Hashtbl List Memsys Pagetable Printf QCheck QCheck_alcotest Result Tlb Topology
