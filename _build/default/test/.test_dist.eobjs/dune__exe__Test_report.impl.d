test/test_report.ml: Alcotest Ddsm_core Ddsm_machine Ddsm_report Filename Format List Result Series Stats String Sys
