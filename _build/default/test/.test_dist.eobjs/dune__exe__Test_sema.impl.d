test/test_sema.ml: Alcotest Ddsm_frontend Ddsm_ir Ddsm_sema Decl Expr Format List Option Parser Sema Stmt String Types
