test/test_sema.mli:
