test/test_transform.ml: Alcotest Ddsm_frontend Ddsm_ir Ddsm_sema Ddsm_transform Decl Expr Flags List Parser Pipeline Sema Stmt String
