test/test_dist.ml: Affinity Alcotest Array Ddsm_dist Dim_map Format Fun Grid Hashtbl Intmath Kind Layout List Printf QCheck QCheck_alcotest
