test/test_linker.ml: Alcotest Ddsm_dist Ddsm_exec Ddsm_frontend Ddsm_linker Ddsm_machine Ddsm_runtime Ddsm_sema Engine Filename List Objfile Parser Prelink Printf Prog Shadow Sig_ String Sys Unix
