test/test_exec.ml: Alcotest Array Ddsm_exec Ddsm_frontend Ddsm_ir Ddsm_machine Ddsm_runtime Ddsm_sema Ddsm_transform Decl Engine Flags List Parser Pipeline Printf Prog Sema String
