examples/quickstart.ml: Ddsm_core Ddsm_report Format List Printf
