examples/transpose.mli:
