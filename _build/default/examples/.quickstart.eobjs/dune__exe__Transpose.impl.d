examples/transpose.ml: Array Ddsm_core Ddsm_machine Ddsm_report List Printf Sys
