examples/adi.ml: Array Ddsm_core Ddsm_report Printf Sys
