examples/lu.ml: Array Ddsm_core List Printf Sys
