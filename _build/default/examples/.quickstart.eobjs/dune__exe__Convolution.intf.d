examples/convolution.mli:
