examples/quickstart.mli:
