examples/adi.mli:
