examples/convolution.ml: Array Ddsm_core Ddsm_machine List Printf Sys
