examples/lu.mli:
