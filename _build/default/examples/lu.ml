(* The paper's §8.1 LU scenario, Table 2 angle: how much does reshaped-array
   addressing cost, and how much of it do the compiler optimizations win
   back? Runs the same SSOR-style kernel on one processor at each
   optimization level, plus the original (non-reshaped) code.

     dune exec examples/lu.exe [n] *)

module Ddsm = Ddsm_core.Ddsm
module Flags = Ddsm_core.Ddsm.Flags

let source ~n ~reshape =
  Printf.sprintf
    {|
      program lu
      integer n, i, j, k, m
      parameter (n = %d)
      real*8 u(5, n, n, n), r(5, n, n, n)
%s
      do j = 1, n
        do i = 1, n
          do k = 1, n
            do m = 1, 5
              u(m, i, j, k) = m + i * 0.5 + j * 0.25 + k * 0.125
            enddo
          enddo
        enddo
      enddo
      do j = 2, n-1
        do i = 2, n-1
          do k = 2, n-1
            do m = 1, 5
              r(m,i,j,k) = (u(m,i-1,j,k) + u(m,i+1,j,k) + u(m,i,j-1,k) + u(m,i,j+1,k) + u(m,i,j,k-1) + u(m,i,j,k+1)) / 6.0
            enddo
          enddo
        enddo
      enddo
      print *, 'sample:', r(1, 2, 2, 2)
      end
|}
    n
    (if reshape then "c$distribute_reshape u(*, block, block, *), r(*, block, block, *)"
     else "")

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 12 in
  Printf.printf "LU/SSOR kernel (5,%d,%d,%d) on 1 processor — Table 2 setup\n\n" n n n;
  let rows =
    [
      ("reshape, no optimizations", Flags.all_off, true);
      ("reshape, tile and peel", Flags.tile_peel, true);
      ("reshape, tile+peel+hoist+cse", Flags.tile_peel_hoist, true);
      ("reshape, all optimizations", Flags.all_on, true);
      ("original (no reshaping)", Flags.all_on, false);
    ]
  in
  let results =
    List.map
      (fun (label, flags, reshape) ->
        match Ddsm.run_source ~flags ~nprocs:1 ~machine_procs:8 (source ~n ~reshape) with
        | Ok o -> (label, o.Ddsm.Engine.cycles)
        | Error e -> failwith (label ^ ": " ^ e))
      rows
  in
  let base = snd (List.nth results (List.length results - 1)) in
  Printf.printf "%-32s %14s %10s\n" "configuration" "cycles" "vs orig";
  List.iter
    (fun (label, cycles) ->
      Printf.printf "%-32s %14d %9.2fx\n" label cycles
        (float_of_int cycles /. float_of_int base))
    results;
  print_endline
    "\n'Most importantly, the final version of the code ran nearly as\n\
     efficiently as the original code without reshaping.' (paper §8.1)"
