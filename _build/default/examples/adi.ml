(* Dynamic data redistribution (paper §3.3): "useful when an application
   needs a different distribution on the same array in two distinct phases
   of the program."

   The classic case is an ADI-style solver: phase 1 sweeps along rows (a
   column distribution ( *, block ) keeps each sweep local), phase 2 sweeps
   along columns (a row distribution ( block, * ) would be ideal). With a
   regular distribution the program can issue c$redistribute between the
   phases; this example measures the phase-2 sweep with and without the
   redistribution.

     dune exec examples/adi.exe [n] [nprocs] *)

module Ddsm = Ddsm_core.Ddsm
module Stats = Ddsm_report.Stats

let source ~n ~iters ~redistribute =
  Printf.sprintf
    {|
      program adi
      integer n, i, j, it
      parameter (n = %d)
      real*8 a(n, n)
c$distribute a(*, block)
      do j = 1, n
        do i = 1, n
          a(i, j) = i + j
        enddo
      enddo
c     phase 1: sweeps along i (columns local under (*, block))
      do it = 1, %d
c$doacross local(i, j) affinity(j) = data(a(1, j))
        do j = 1, n
          do i = 2, n
            a(i, j) = a(i, j) + a(i-1, j) * 0.5
          enddo
        enddo
      enddo
%s
c     phase 2: sweeps along j (wants rows local)
      do it = 1, %d
c$doacross local(i, j) affinity(i) = data(a(i, 1))
        do i = 1, n
          do j = 2, n
            a(i, j) = a(i, j) + a(i, j-1) * 0.5
          enddo
        enddo
      enddo
      print *, 'corner:', a(n, n)
      end
|}
    n iters
    (if redistribute then "c$redistribute a(block, *)" else "")
    iters

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 256 in
  let nprocs = try int_of_string Sys.argv.(2) with _ -> 16 in
  Printf.printf "ADI-style phase change, %dx%d on %d procs\n\n" n n nprocs;
  let run ~redistribute ~iters =
    match
      Ddsm.run_source ~nprocs ~machine_procs:64
        (source ~n ~iters ~redistribute)
    with
    | Ok o -> o
    | Error e -> failwith e
  in
  (* isolate the steady-state phases by differencing iteration counts *)
  let cycles ~redistribute =
    (run ~redistribute ~iters:2).Ddsm.Engine.cycles
    - (run ~redistribute ~iters:1).Ddsm.Engine.cycles
  in
  let without = cycles ~redistribute:false in
  let with_r = cycles ~redistribute:true in
  let o = run ~redistribute:true ~iters:1 in
  Printf.printf "per-iteration cycles without redistribution: %d\n" without;
  Printf.printf "per-iteration cycles with    redistribution: %d  (%.2fx)\n"
    with_r
    (float_of_int without /. float_of_int with_r);
  let st = Stats.of_counters o.Ddsm.Engine.counters in
  Printf.printf
    "\nAfter c$redistribute a(block, *), phase 2's sweeps run on local rows\n\
     (local fills with redistribution: %.0f%%). Note the affinity clauses\n\
     compile to kind-generic schedules because the distribution of a\n\
     redistributable array is only known at run time.\n"
    (100.0 *. st.Stats.local_fill_fraction)
