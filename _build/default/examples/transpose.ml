(* The paper's §8.2 matrix-transpose scenario: A(j,i) = B(i,j) with
   A distributed ( *, block ) and B (block, * ). B's row distribution cannot
   be realized by page placement — its contiguous runs are much smaller than
   a page — so only reshaping makes it local, and the four placement
   versions behave very differently.

     dune exec examples/transpose.exe [n] [nprocs]

   Compares first-touch, round-robin, regular and reshaped on the same
   source, printing simulated time and the memory-system behaviour. *)

module Ddsm = Ddsm_core.Ddsm
module Stats = Ddsm_report.Stats

let source ~n ~dist =
  Printf.sprintf
    {|
      program transpose
      integer n, i, j, it
      parameter (n = %d)
      real*8 a(n, n), b(n, n)
%s
      do j = 1, n
        do i = 1, n
          b(i, j) = i + j * 0.5
        enddo
      enddo
      do it = 1, 4
c$doacross local(i, j)
        do i = 1, n
          do j = 1, n
            a(j, i) = b(i, j)
          enddo
        enddo
      enddo
      print *, 'corner:', a(1, n)
      end
|}
    n dist

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 384 in
  let nprocs = try int_of_string Sys.argv.(2) with _ -> 32 in
  Printf.printf "transpose %dx%d on %d processors (machine: 64 procs, scaled)\n\n"
    n n nprocs;
  let versions =
    [
      ("first-touch", "", Ddsm_machine.Pagetable.First_touch);
      ("round-robin", "", Ddsm_machine.Pagetable.Round_robin);
      ("regular", "c$distribute a(*, block), b(block, *)", Ddsm_machine.Pagetable.First_touch);
      ("reshaped", "c$distribute_reshape a(*, block), b(block, *)", Ddsm_machine.Pagetable.First_touch);
    ]
  in
  Printf.printf "%-12s %12s %10s %10s %10s\n" "version" "cycles" "L2 miss"
    "remote%" "TLB miss";
  List.iter
    (fun (label, dist, policy) ->
      match
        Ddsm.run_source ~nprocs ~policy ~machine_procs:64 (source ~n ~dist)
      with
      | Error e -> Printf.printf "%-12s failed: %s\n" label e
      | Ok o ->
          let st = Stats.of_counters o.Ddsm.Engine.counters in
          Printf.printf "%-12s %12d %10d %9.1f%% %10d\n" label
            o.Ddsm.Engine.cycles st.Stats.l2_misses
            (100.0 *. (1.0 -. st.Stats.local_fill_fraction))
            st.Stats.tlb_misses)
    versions;
  print_endline
    "\nOnly reshaping localizes B's row distribution; regular placement\n\
     puts every page on the last requesting processor's node (paper §8.2)."
