(* Quickstart: compile and run a directive-annotated program on the
   simulated Origin-2000, entirely through the public API.

     dune exec examples/quickstart.exe

   The program distributes an array with c$distribute_reshape, initializes
   and sums it in parallel with affinity-scheduled doacross loops, and
   prints the result; we then show the simulated execution time and the
   hardware-counter-style statistics. *)

module Ddsm = Ddsm_core.Ddsm

let source =
  {|
      program quickstart
      integer n, i
      parameter (n = 10000)
      real*8 a(n), s
c$distribute_reshape a(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = sqrt(dble(i))
      enddo
      s = 0.0
      do i = 1, n
        s = s + a(i)
      enddo
      print *, 'sum of square roots:', s
      end
|}

let () =
  print_endline "--- quickstart: 16 simulated processors ---";
  match Ddsm.run_source ~nprocs:16 source with
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
  | Ok o ->
      List.iter print_endline o.Ddsm.Engine.prints;
      Printf.printf "simulated cycles: %d\n\n" o.Ddsm.Engine.cycles;
      Format.printf "%a@." Ddsm_report.Stats.pp
        (Ddsm_report.Stats.of_counters o.Ddsm.Engine.counters);
      (* the same executable semantics on 1 processor, for comparison *)
      (match Ddsm.run_source ~nprocs:1 source with
      | Ok o1 ->
          Printf.printf "\n1-processor cycles: %d  (parallel speedup %.1fx)\n"
            o1.Ddsm.Engine.cycles
            (float_of_int o1.Ddsm.Engine.cycles /. float_of_int o.Ddsm.Engine.cycles)
      | Error e -> prerr_endline e)
