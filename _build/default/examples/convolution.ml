(* The paper's §8.3 2-D convolution with two levels of parallelism: a
   (block, block) distribution suffers false sharing at both page and cache
   -line granularity unless the arrays are reshaped. This example shows the
   coherence counters (invalidations, upgrades) that reveal it.

     dune exec examples/convolution.exe [n] [nprocs] *)

module Ddsm = Ddsm_core.Ddsm
module C = Ddsm_machine.Counters

let source ~n ~dist ~affinity =
  Printf.sprintf
    {|
      program conv
      integer n, i, j
      parameter (n = %d)
      real*8 a(n, n), b(n, n)
%s
      do j = 1, n
        do i = 1, n
          b(i, j) = i + 2 * j
          a(i, j) = 0.0
        enddo
      enddo
c$doacross nest(j, i) local(i, j)%s
      do j = 2, n-1
        do i = 2, n-1
          a(i,j) = (b(i-1,j) + b(i,j-1) + b(i,j) + b(i,j+1) + b(i+1,j)) / 5.0
        enddo
      enddo
      print *, 'sample:', a(2, 2)
      end
|}
    n dist affinity

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 128 in
  let nprocs = try int_of_string Sys.argv.(2) with _ -> 48 in
  Printf.printf
    "2-D convolution %dx%d, (block,block), 2-level parallelism, %d procs\n\n" n n
    nprocs;
  let versions =
    [
      ("first-touch", "", "", Ddsm_machine.Pagetable.First_touch);
      ("round-robin", "", "", Ddsm_machine.Pagetable.Round_robin);
      ( "regular",
        "c$distribute a(block, block), b(block, block)",
        " affinity(j, i) = data(a(i, j))",
        Ddsm_machine.Pagetable.First_touch );
      ( "reshaped",
        "c$distribute_reshape a(block, block), b(block, block)",
        " affinity(j, i) = data(a(i, j))",
        Ddsm_machine.Pagetable.First_touch );
    ]
  in
  Printf.printf "%-12s %12s %12s %10s %10s\n" "version" "cycles" "invals"
    "upgrades" "remote";
  List.iter
    (fun (label, dist, aff, policy) ->
      match
        Ddsm.run_source ~nprocs ~policy ~machine_procs:64
          (source ~n ~dist ~affinity:aff)
      with
      | Error e -> Printf.printf "%-12s failed: %s\n" label e
      | Ok o ->
          let c = o.Ddsm.Engine.counters in
          Printf.printf "%-12s %12d %12d %10d %10d\n" label o.Ddsm.Engine.cycles
            c.C.invals_sent c.C.upgrades c.C.remote_fills)
    versions;
  print_endline
    "\nWith two-dimensional blocks the regular distribution's invalidation\n\
     count betrays 'false sharing over both cache lines and pages'; after\n\
     reshaping, each portion is contiguous and the coherence traffic drops\n\
     back to the stencil's true boundary sharing (paper §8.3)."
