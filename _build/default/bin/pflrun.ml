(* pflrun — run a linked program image on the simulated CC-NUMA machine.

   The processor count, page-placement policy and machine scale are chosen
   here at start-up, exactly as in the paper ("the number of processors in
   each distributed dimension is determined at program start-up time, which
   enables the same executable to run with different number of
   processors"). *)

open Cmdliner
module Ddsm = Ddsm_core.Ddsm
module Pagetable = Ddsm_machine.Pagetable

let policy_conv =
  let parse = function
    | "first-touch" | "ft" -> Ok Pagetable.First_touch
    | "round-robin" | "rr" -> Ok Pagetable.Round_robin
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S (first-touch|round-robin)" s))
  in
  let print ppf = function
    | Pagetable.First_touch -> Format.pp_print_string ppf "first-touch"
    | Pagetable.Round_robin -> Format.pp_print_string ppf "round-robin"
  in
  Arg.conv (parse, print)

let machine_conv =
  let parse s =
    if s = "origin" then Ok Ddsm.Origin2000
    else
      match Scanf.sscanf_opt s "scaled:%d" (fun f -> f) with
      | Some f when f >= 1 -> Ok (Ddsm.Scaled f)
      | _ -> Error (`Msg "machine is 'origin' or 'scaled:<factor>'")
  in
  let print ppf = function
    | Ddsm.Origin2000 -> Format.pp_print_string ppf "origin"
    | Ddsm.Scaled f -> Format.fprintf ppf "scaled:%d" f
  in
  Arg.conv (parse, print)

let run image nprocs policy machine heap_words stats no_checks bounds max_cycles =
  match Ddsm.load_image ~path:image with
  | Error e ->
      Printf.eprintf "%s\n" e;
      exit 1
  | Ok linked -> (
      let prog = Ddsm.prog_of_linked linked in
      let rt = Ddsm.make_rt ~machine ~policy ~heap_words ~nprocs () in
      match
        Ddsm.run prog ~rt ~checks:(not no_checks) ~bounds ?max_cycles ()
      with
      | Error m ->
          Printf.eprintf "runtime error: %s\n" m;
          exit 2
      | Ok o ->
          List.iter print_endline o.Ddsm.Engine.prints;
          Printf.printf "cycles: %d  (procs: %d)\n" o.Ddsm.Engine.cycles nprocs;
          if stats then
            Format.printf "%a@."
              Ddsm_report.Stats.pp
              (Ddsm_report.Stats.of_counters o.Ddsm.Engine.counters))

let () =
  let image = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROG.pfi") in
  let nprocs =
    Arg.(value & opt int 8 & info [ "p"; "nprocs" ] ~docv:"N" ~doc:"Simulated processors.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Pagetable.First_touch
      & info [ "policy" ] ~docv:"POLICY" ~doc:"Default page placement: first-touch or round-robin.")
  in
  let machine =
    Arg.(
      value
      & opt machine_conv (Ddsm.Scaled 64)
      & info [ "machine" ] ~docv:"M" ~doc:"Machine preset: origin or scaled:<factor>.")
  in
  let heap =
    Arg.(value & opt int (1 lsl 24) & info [ "heap-words" ] ~doc:"Simulated heap size in 8-byte words.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print hardware-counter statistics.") in
  let no_checks =
    Arg.(value & flag & info [ "no-checks" ] ~doc:"Disable the §6 runtime argument checks.")
  in
  let bounds = Arg.(value & flag & info [ "bounds" ] ~doc:"Enable subscript bounds checking.") in
  let max_cycles =
    Arg.(value & opt (some int) None & info [ "max-cycles" ] ~doc:"Abort after this many cycles.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "pflrun" ~version:"1.0"
         ~doc:"Run a linked image on the simulated Origin-2000.")
      Term.(
        const run $ image $ nprocs $ policy $ machine $ heap $ stats $ no_checks
        $ bounds $ max_cycles)
  in
  exit (Cmd.eval cmd)
