(** Whole-array distribution: the runtime descriptor built when a
    [c$distribute] or [c$distribute_reshape] directive is elaborated at
    program start-up.

    Combines a processor {!Grid} with one {!Dim_map} per array dimension and
    answers the multi-dimensional ownership questions the runtime and the
    simulator need. The transformation of a reshaped array distributed in
    multiple dimensions "is a simple composition of this basic scheme"
    (paper §4.3) — here literally a per-dimension composition. *)

type t = private {
  extents : int array;
  kinds : Kind.t array;
  grid : Grid.t;
  dims : Dim_map.t array;
}

val make :
  extents:int array -> kinds:Kind.t array -> nprocs:int ->
  ?onto:int array -> unit -> t
(** Elaborate a distribution over [nprocs] processors. Raises
    [Invalid_argument] on arity mismatches or invalid extents/kinds. *)

val ndims : t -> int
val nprocs : t -> int

val owner_tuple : t -> int array -> int array
(** Per-dimension owner indices of an element (0-based indices). *)

val owner : t -> int array -> int
(** Linear processor owning an element. *)

val offsets : t -> int array -> int array
(** Per-dimension local offsets of an element within its owner's portion. *)

val global_of : t -> proc:int -> offsets:int array -> int array
(** Inverse: the global element held by [proc] at local [offsets]. *)

val portion_extents : t -> proc:int -> int array
(** Per-dimension portion sizes owned by a linear processor. An empty portion
    has at least one 0 extent. *)

val storage_extents : t -> int array
(** Uniform per-processor storage shape used by the reshaped-storage manager
    (every processor's offsets fit in this box). *)

val elements_per_proc_max : t -> int
(** Product of [storage_extents] — reshaped per-processor allocation size in
    elements. *)

val iter_portion : t -> proc:int -> (int array -> unit) -> unit
(** Iterate all global element tuples owned by [proc], first dimension
    fastest. The callback receives a reused buffer; copy if retained. *)

val contiguous_ranges : t -> proc:int -> elem_bytes:int -> (int * int) list
(** Maximal contiguous byte ranges [(lo_byte, hi_byte)] (inclusive) of the
    portion of [proc] in the array's *original* column-major layout, relative
    to the array base. Used to place pages for regular distributions and to
    reason about page-granularity false sharing. *)

val linear_element : t -> int array -> int
(** Column-major linearisation of a global element tuple (element count, not
    bytes). *)

val equal_shape : t -> t -> bool
(** Same extents, kinds and grid — the condition under which two arrays can
    share loop tiling (paper §7.1, "match the first array in size and
    distribution"). *)

val pp : Format.formatter -> t -> unit
