type spec = { s : int; c : int }
type piece = { lo : int; hi : int; step : int }

let pp_piece ppf { lo; hi; step } = Format.fprintf ppf "[%d..%d by %d]" lo hi step

(* Iteration range in which the affinity element s*i+c stays inside [0, N). *)
let valid_range dm { s; c } =
  let n = dm.Dim_map.extent in
  if s = 0 then (min_int, max_int)
  else (Intmath.cdiv (-c) s, Intmath.fdiv (n - 1 - c) s)

let clamp_piece ~lb ~ub ~step ~vlo ~vhi ~base ~pstep lo hi =
  let lo = max (max lo lb) vlo and hi = min (min hi ub) vhi in
  if lo > hi then None
  else
    let lo = Intmath.align_up lo ~base ~step:pstep in
    if lo > hi then None else Some { lo; hi; step }

let pieces dm spec ~lb ~ub ~step ~proc =
  if step <= 0 then invalid_arg "Affinity.pieces: step must be positive";
  if lb > ub then []
  else
    let { s; c } = spec in
    if s < 0 then invalid_arg "Affinity.pieces: negative affinity stride";
    let p = proc and pr = dm.Dim_map.procs in
    if p < 0 || p >= pr then invalid_arg "Affinity.pieces: proc out of range";
    let vlo, vhi = valid_range dm spec in
    if s = 0 then
      (* all iterations touch element c: everything on its owner (nothing at
         all if c is outside the dimension — no iteration is valid) *)
      if c >= 0 && c < dm.Dim_map.extent && Dim_map.owner dm c = p then
        [ { lo = lb; hi = ub; step } ]
      else []
    else
      match dm.Dim_map.kind with
      | Kind.Star ->
          if p = 0 then [ { lo = lb; hi = ub; step } ] else []
      | Kind.Block ->
          let b = dm.Dim_map.block in
          let elo = p * b and ehi = min dm.Dim_map.extent ((p + 1) * b) - 1 in
          if elo > ehi then []
          else
            let lo = Intmath.cdiv (elo - c) s and hi = Intmath.fdiv (ehi - c) s in
            Option.to_list
              (clamp_piece ~lb ~ub ~step ~vlo ~vhi ~base:lb ~pstep:step lo hi)
      | Kind.Cyclic ->
          (* i such that s*i ≡ p - c (mod P): an arithmetic progression of
             period P/g when solvable. Intersect with the loop progression. *)
          let g, x, _ = Intmath.egcd s pr in
          if (p - c) mod g <> 0 then []
          else
            let period = pr / g in
            let i0 = Intmath.fmod (x * ((p - c) / g)) period in
            (* smallest i >= lb with i ≡ i0 (mod period) *)
            let own = { Intmath.start = lb + Intmath.fmod (i0 - lb) period; step = period } in
            let loop = { Intmath.start = lb; step } in
            (match Intmath.ap_intersect loop own with
            | None -> []
            | Some { Intmath.start; step = st } ->
                let lo = max start vlo and hi = min ub vhi in
                if lo > hi then []
                else
                  let lo = Intmath.align_up lo ~base:start ~step:st in
                  if lo > hi then [] else [ { lo; hi; step = st } ])
      | Kind.Cyclic_k k ->
          let n = dm.Dim_map.extent in
          let nchunks = Intmath.cdiv n k in
          (* chunks touched by iterations [lb, ub] *)
          let ch_lo = max 0 (Intmath.fdiv ((s * lb) + c) k)
          and ch_hi = min (nchunks - 1) (Intmath.fdiv ((s * ub) + c) k) in
          if p > ch_hi then []
          else
            let first = p + (Intmath.cdiv (max 0 (ch_lo - p)) pr * pr) in
            let acc = ref [] in
            let ch = ref first in
            while !ch <= ch_hi do
              let elo = !ch * k and ehi = min n ((!ch + 1) * k) - 1 in
              let lo = Intmath.cdiv (elo - c) s and hi = Intmath.fdiv (ehi - c) s in
              (match clamp_piece ~lb ~ub ~step ~vlo ~vhi ~base:lb ~pstep:step lo hi with
              | Some pc -> acc := pc :: !acc
              | None -> ());
              ch := !ch + pr
            done;
            List.rev !acc

let iters dm spec ~lb ~ub ~step ~proc =
  pieces dm spec ~lb ~ub ~step ~proc
  |> List.concat_map (fun { lo; hi; step } ->
         let rec go i acc = if i > hi then List.rev acc else go (i + step) (i :: acc) in
         go lo [])
