(** Affinity scheduling: which iterations of a [c$doacross ... affinity(i) =
    data(A(s*i+c))] loop run on each processor (paper §3.4 and Figure 2).

    The original loop [do i = LB, UB, step] is partitioned so that iteration
    [i] executes on the processor owning element [s*i + c] of the distributed
    dimension. The partition for each processor is a union of iteration
    {!piece}s — the same sets the compiler's generated doubly (or triply)
    nested loops enumerate; the VM and the property tests use this module as
    the executable specification of those loops.

    Indices are 0-based element space: the IR layer folds the array lower
    bound into [c] before calling here. The paper requires [s] ("p") to be a
    non-negative literal; we additionally support the degenerate [s = 0]
    (every iteration lands on the owner of element [c]). [step] must be
    positive (checked by sema). *)

type spec = { s : int; c : int }

type piece = { lo : int; hi : int; step : int }
(** Iterations [lo, lo+step, ..., <= hi]. Empty when [lo > hi]. *)

val pieces :
  Dim_map.t -> spec -> lb:int -> ub:int -> step:int -> proc:int -> piece list
(** Iteration pieces assigned to [proc], in increasing order, disjoint across
    processors, covering exactly the iterations whose affinity element is
    owned by [proc].

    Shapes, mirroring Figure 2:
    - [Star]: everything on processor 0.
    - [Block]: at most one piece (the intersection of an index interval with
      the iteration progression).
    - [Cyclic]: at most one piece with enlarged step (the intersection of two
      arithmetic progressions); empty when the residues are incompatible, or
      several pieces when [s > 1] makes ownership periodic with period
      [P / gcd(s, P)].
    - [Cyclic_k]: one piece per owned chunk overlapping the iteration range
      (the innermost loop of the paper's triply nested form). *)

val iters : Dim_map.t -> spec -> lb:int -> ub:int -> step:int -> proc:int -> int list
(** Materialised iteration list (for tests and small loops). *)

val pp_piece : Format.formatter -> piece -> unit
