(** Ownership and addressing math for one distributed array dimension.

    This is the runtime realisation of the paper's Table 1: for a dimension of
    extent [N] distributed over [P] processors, it answers "which processor
    owns element [i]" (the [div] part of a reshaped reference) and "at which
    local offset" (the [mod] part), plus the inverse map and portion
    enumeration used for page placement and storage allocation.

    All indices here are 0-based element indices within the dimension; the IR
    layer normalises Fortran lower bounds before reaching this module. *)

type t = private {
  extent : int;  (** N, number of elements in the dimension *)
  procs : int;  (** P, processors assigned to this dimension *)
  kind : Kind.t;
  block : int;  (** b = ceil(N/P) for [Block]; chunk size k for [Cyclic_k];
                    1 for [Cyclic]; N for [Star]. *)
}

val make : extent:int -> procs:int -> Kind.t -> t
(** Raises [Invalid_argument] if [extent < 1], [procs < 1], or [procs > 1]
    on a [Star] dimension. *)

val owner : t -> int -> int
(** Processor owning element [i] (Table 1 [div] row):
    block [i/b]; cyclic [i mod P]; cyclic(k) [(i/k) mod P]; star [0]. *)

val offset : t -> int -> int
(** Local offset of element [i] within its owner's portion (Table 1 [mod]
    row): block [i mod b]; cyclic [i/P]; cyclic(k) [(i/(kP))*k + i mod k];
    star [i]. *)

val global : t -> proc:int -> offset:int -> int
(** Inverse of [(owner, offset)]. Unchecked: the pair must denote a real
    element (use [portion_size]). *)

val portion_size : t -> proc:int -> int
(** Number of elements owned by [proc]. *)

val storage_extent : t -> int
(** Per-processor storage extent used when reshaping: the smallest extent
    such that every processor's [offset] values fit. Block: b; cyclic:
    ceil(N/P); cyclic(k): ceil(ceil(N/k)/P) * k. *)

val iter_portion : t -> proc:int -> (int -> unit) -> unit
(** Iterate the global indices owned by [proc] in increasing order. *)

val portion_ranges : t -> proc:int -> (int * int) list
(** Maximal contiguous global index ranges [(lo, hi)] (inclusive) owned by
    [proc], in increasing order. Block yields at most one range; cyclic yields
    singletons; cyclic(k) yields one range per owned chunk. *)

val pp : Format.formatter -> t -> unit
