lib/dist/kind.ml: Format Printf Scanf String
