lib/dist/layout.ml: Array Dim_map Format Grid Kind List
