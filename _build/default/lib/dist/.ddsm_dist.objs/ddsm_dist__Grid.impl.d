lib/dist/grid.ml: Array Format Kind List
