lib/dist/kind.mli: Format
