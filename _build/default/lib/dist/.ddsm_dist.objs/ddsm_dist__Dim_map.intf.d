lib/dist/dim_map.mli: Format Kind
