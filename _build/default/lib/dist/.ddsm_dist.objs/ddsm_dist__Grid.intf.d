lib/dist/grid.mli: Format Kind
