lib/dist/intmath.ml:
