lib/dist/intmath.mli:
