lib/dist/affinity.ml: Dim_map Format Intmath Kind List Option
