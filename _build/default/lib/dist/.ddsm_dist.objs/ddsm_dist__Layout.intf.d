lib/dist/layout.mli: Dim_map Format Grid Kind
