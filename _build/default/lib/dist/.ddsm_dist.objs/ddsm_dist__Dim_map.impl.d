lib/dist/dim_map.ml: Format Intmath Kind List Printf
