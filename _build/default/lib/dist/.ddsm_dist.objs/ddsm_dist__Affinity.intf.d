lib/dist/affinity.mli: Dim_map Format
