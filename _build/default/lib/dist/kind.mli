(** Per-dimension distribution kinds, as in the [c$distribute] directive.

    [<dist>] may be one of [block], [cyclic], [cyclic(<k>)], or [*], with the
    same meaning as in HPF (paper §3.2). [Cyclic_k 1] is normalised to
    [Cyclic]. *)

type t =
  | Block  (** contiguous chunks of size ceil(N/P) *)
  | Cyclic  (** element i on processor i mod P *)
  | Cyclic_k of int  (** chunks of k elements dealt round-robin *)
  | Star  (** dimension not distributed *)

val equal : t -> t -> bool
val is_distributed : t -> bool

val normalise : t -> t
(** [Cyclic_k 1] -> [Cyclic]; validates that [Cyclic_k k] has [k >= 1]. *)

val pp : Format.formatter -> t -> unit
(** Prints directive syntax: [block], [cyclic], [cyclic(4)], [*]. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses directive syntax (case-insensitive), e.g. ["cyclic(4)"]. *)
