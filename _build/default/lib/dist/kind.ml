type t = Block | Cyclic | Cyclic_k of int | Star

let equal a b =
  match (a, b) with
  | Block, Block | Cyclic, Cyclic | Star, Star -> true
  | Cyclic_k k1, Cyclic_k k2 -> k1 = k2
  | Cyclic_k 1, Cyclic | Cyclic, Cyclic_k 1 -> true
  | _ -> false

let is_distributed = function Star -> false | _ -> true

let normalise = function
  | Cyclic_k k when k < 1 -> invalid_arg "Kind.normalise: cyclic(k) needs k >= 1"
  | Cyclic_k 1 -> Cyclic
  | k -> k

let pp ppf = function
  | Block -> Format.pp_print_string ppf "block"
  | Cyclic -> Format.pp_print_string ppf "cyclic"
  | Cyclic_k k -> Format.fprintf ppf "cyclic(%d)" k
  | Star -> Format.pp_print_string ppf "*"

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let s = String.trim (String.lowercase_ascii s) in
  if s = "block" then Ok Block
  else if s = "cyclic" then Ok Cyclic
  else if s = "*" then Ok Star
  else
    match Scanf.sscanf_opt s "cyclic(%d)" (fun k -> k) with
    | Some k when k >= 1 -> Ok (Cyclic_k k)
    | Some k -> Error (Printf.sprintf "cyclic(%d): chunk size must be >= 1" k)
    | None -> Error (Printf.sprintf "unknown distribution kind %S" s)
