type t = {
  extents : int array;
  kinds : Kind.t array;
  grid : Grid.t;
  dims : Dim_map.t array;
}

let make ~extents ~kinds ~nprocs ?onto () =
  let nd = Array.length extents in
  if nd = 0 then invalid_arg "Layout.make: zero-dimensional array";
  if Array.length kinds <> nd then invalid_arg "Layout.make: kinds arity mismatch";
  let kinds = Array.map Kind.normalise kinds in
  let grid = Grid.assign ~nprocs ~kinds ~onto in
  let dims =
    Array.init nd (fun d ->
        Dim_map.make ~extent:extents.(d) ~procs:grid.Grid.per_dim.(d) kinds.(d))
  in
  { extents; kinds; grid; dims }

let ndims t = Array.length t.extents
let nprocs t = t.grid.Grid.total

let check_tuple t idx =
  if Array.length idx <> ndims t then invalid_arg "Layout: index arity mismatch"

let owner_tuple t idx =
  check_tuple t idx;
  Array.mapi (fun d i -> Dim_map.owner t.dims.(d) i) idx

let owner t idx = Grid.linear t.grid (owner_tuple t idx)

let offsets t idx =
  check_tuple t idx;
  Array.mapi (fun d i -> Dim_map.offset t.dims.(d) i) idx

let global_of t ~proc ~offsets =
  check_tuple t offsets;
  let ow = Grid.delinear t.grid proc in
  Array.mapi (fun d off -> Dim_map.global t.dims.(d) ~proc:ow.(d) ~offset:off) offsets

let portion_extents t ~proc =
  let ow = Grid.delinear t.grid proc in
  Array.mapi (fun d p -> Dim_map.portion_size t.dims.(d) ~proc:p) ow

let storage_extents t = Array.map Dim_map.storage_extent t.dims
let elements_per_proc_max t = Array.fold_left ( * ) 1 (storage_extents t)

let iter_portion t ~proc f =
  let ow = Grid.delinear t.grid proc in
  let nd = ndims t in
  let ranges = Array.init nd (fun d -> Dim_map.portion_ranges t.dims.(d) ~proc:ow.(d)) in
  if Array.exists (fun r -> r = []) ranges then ()
  else
    let buf = Array.make nd 0 in
    (* First dimension fastest: recurse from the last dimension down. *)
    let rec outer_rev d =
      if d < 0 then f buf
      else
        List.iter
          (fun (lo, hi) ->
            for i = lo to hi do
              buf.(d) <- i;
              outer_rev (d - 1)
            done)
          ranges.(d)
    in
    outer_rev (nd - 1)

let linear_element t idx =
  check_tuple t idx;
  let lin = ref 0 and stride = ref 1 in
  Array.iteri
    (fun d i ->
      if i < 0 || i >= t.extents.(d) then invalid_arg "Layout.linear_element: out of bounds";
      lin := !lin + (i * !stride);
      stride := !stride * t.extents.(d))
    idx;
  !lin

let contiguous_ranges t ~proc ~elem_bytes =
  (* The portion of a column-major array is contiguous in runs along dim 0
     (as long as dim 0 owns a contiguous range); enumerate runs by iterating
     the outer dimensions and taking dim-0 ranges. Adjacent runs are merged
     when they abut in linear address space (e.g. a ( *,block) column dist,
     where whole consecutive columns are owned). *)
  let ow = Grid.delinear t.grid proc in
  let nd = ndims t in
  let ranges = Array.init nd (fun d -> Dim_map.portion_ranges t.dims.(d) ~proc:ow.(d)) in
  if Array.exists (fun r -> r = []) ranges then []
  else
    let runs = ref [] in
    let buf = Array.make nd 0 in
    let emit lo0 hi0 =
      buf.(0) <- lo0;
      let base = linear_element t buf in
      let lo_b = base * elem_bytes in
      let hi_b = ((base + (hi0 - lo0) + 1) * elem_bytes) - 1 in
      match !runs with
      | (plo, phi) :: rest when phi + 1 = lo_b -> runs := (plo, hi_b) :: rest
      | _ -> runs := (lo_b, hi_b) :: !runs
    in
    let rec outer d =
      if d = 0 then List.iter (fun (lo, hi) -> emit lo hi) ranges.(0)
      else
        List.iter
          (fun (lo, hi) ->
            for i = lo to hi do
              buf.(d) <- i;
              outer (d - 1)
            done)
          ranges.(d)
    in
    (* outer dims slowest: drive from last dim; but runs must be emitted in
       increasing linear order, which column-major gives when the *outermost*
       loop is the last dimension. *)
    outer (nd - 1);
    List.rev !runs

let equal_shape a b =
  a.extents = b.extents
  && Array.length a.kinds = Array.length b.kinds
  && Array.for_all2 Kind.equal a.kinds b.kinds
  && a.grid.Grid.per_dim = b.grid.Grid.per_dim

let pp ppf t =
  Format.fprintf ppf "@[<h>(%a) dist (%a) %a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_list t.extents)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Kind.pp)
    (Array.to_list t.kinds) Grid.pp t.grid
