let fdiv a b =
  if b <= 0 then invalid_arg "Intmath.fdiv: non-positive divisor";
  if a >= 0 then a / b else -((-a + b - 1) / b)

let fmod a b = a - (b * fdiv a b)
let cdiv a b = fdiv (a + b - 1) b

let rec egcd a b =
  if b = 0 then if a >= 0 then (a, 1, 0) else (-a, -1, 0)
  else
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b * y))

let gcd a b =
  let g, _, _ = egcd a b in
  g

type ap = { start : int; step : int }

let align_up x ~base ~step =
  if step <= 0 then invalid_arg "Intmath.align_up: non-positive step";
  if x <= base then base else base + (cdiv (x - base) step * step)

(* Solve { a.start + i*a.step } ∩ { b.start + j*b.step } by CRT. We need
   x ≡ a.start (mod a.step) and x ≡ b.start (mod b.step); solvable iff
   gcd divides the difference of the residues. *)
let ap_intersect a b =
  if a.step <= 0 || b.step <= 0 then invalid_arg "Intmath.ap_intersect";
  let g, u, _v = egcd a.step b.step in
  let diff = b.start - a.start in
  if diff mod g <> 0 then None
  else
    let lcm = a.step / g * b.step in
    (* x = a.start + a.step * t where t ≡ u * (diff/g) (mod b.step/g) *)
    let m = b.step / g in
    let t0 = fmod (u * (diff / g)) m in
    let x0 = a.start + (a.step * t0) in
    (* x0 satisfies both congruences; move up to >= max of starts *)
    let lo = max a.start b.start in
    Some { start = align_up lo ~base:x0 ~step:lcm; step = lcm }
