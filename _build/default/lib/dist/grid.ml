type t = { per_dim : int array; total : int }

let prime_factors n =
  (* descending list of prime factors of n *)
  let rec go n d acc =
    if n = 1 then acc
    else if d * d > n then n :: acc
    else if n mod d = 0 then go (n / d) d (d :: acc)
    else go n (d + 1) acc
  in
  List.sort (fun a b -> compare b a) (go n 2 [])

let assign ~nprocs ~kinds ~onto =
  if nprocs < 1 then invalid_arg "Grid.assign: nprocs < 1";
  let ndims = Array.length kinds in
  let dist_dims =
    Array.to_list kinds
    |> List.mapi (fun i k -> (i, k))
    |> List.filter (fun (_, k) -> Kind.is_distributed k)
    |> List.map fst
  in
  let ndist = List.length dist_dims in
  let weights =
    match onto with
    | None -> List.map (fun _ -> 1.0) dist_dims
    | Some w ->
        if Array.length w <> ndist then
          invalid_arg "Grid.assign: onto clause arity mismatch";
        Array.iter
          (fun x -> if x < 1 then invalid_arg "Grid.assign: onto weight < 1")
          w;
        Array.to_list (Array.map float_of_int w)
  in
  let per_dim = Array.make ndims 1 in
  (match dist_dims with
  | [] -> ()
  | [ d ] -> per_dim.(d) <- nprocs
  | _ ->
      let dims = Array.of_list dist_dims in
      let w = Array.of_list weights in
      let cur = Array.make ndist 1.0 in
      List.iter
        (fun f ->
          (* put factor f on the dimension furthest below its weight ratio *)
          let best = ref 0 in
          for j = 1 to ndist - 1 do
            if cur.(j) /. w.(j) < cur.(!best) /. w.(!best) then best := j
          done;
          cur.(!best) <- cur.(!best) *. float_of_int f;
          per_dim.(dims.(!best)) <- per_dim.(dims.(!best)) * f)
        (prime_factors nprocs));
  let total = Array.fold_left ( * ) 1 per_dim in
  { per_dim; total }

let linear t owner =
  if Array.length owner <> Array.length t.per_dim then
    invalid_arg "Grid.linear: tuple arity mismatch";
  let p = ref 0 and stride = ref 1 in
  Array.iteri
    (fun d o ->
      if o < 0 || o >= t.per_dim.(d) then invalid_arg "Grid.linear: owner out of range";
      p := !p + (o * !stride);
      stride := !stride * t.per_dim.(d))
    owner;
  !p

let delinear t p =
  if p < 0 || p >= t.total then invalid_arg "Grid.delinear: proc out of range";
  let owner = Array.make (Array.length t.per_dim) 0 in
  let rest = ref p in
  Array.iteri
    (fun d n ->
      owner.(d) <- !rest mod n;
      rest := !rest / n)
    t.per_dim;
  owner

let pp ppf t =
  Format.fprintf ppf "@[<h>grid(%a) = %d procs@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "x")
       Format.pp_print_int)
    (Array.to_list t.per_dim) t.total
