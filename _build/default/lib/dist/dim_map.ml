type t = { extent : int; procs : int; kind : Kind.t; block : int }

let make ~extent ~procs kind =
  if extent < 1 then invalid_arg "Dim_map.make: extent < 1";
  if procs < 1 then invalid_arg "Dim_map.make: procs < 1";
  let kind = Kind.normalise kind in
  (match kind with
  | Kind.Star when procs > 1 ->
      invalid_arg "Dim_map.make: a '*' dimension cannot span processors"
  | _ -> ());
  let block =
    match kind with
    | Kind.Block -> Intmath.cdiv extent procs
    | Kind.Cyclic -> 1
    | Kind.Cyclic_k k -> k
    | Kind.Star -> extent
  in
  { extent; procs; kind; block }

let check_index t i =
  if i < 0 || i >= t.extent then
    invalid_arg
      (Printf.sprintf "Dim_map: index %d out of bounds [0,%d)" i t.extent)

let owner t i =
  check_index t i;
  match t.kind with
  | Kind.Star -> 0
  | Kind.Block -> i / t.block
  | Kind.Cyclic -> i mod t.procs
  | Kind.Cyclic_k k -> i / k mod t.procs

let offset t i =
  check_index t i;
  match t.kind with
  | Kind.Star -> i
  | Kind.Block -> i mod t.block
  | Kind.Cyclic -> i / t.procs
  | Kind.Cyclic_k k -> (i / (k * t.procs) * k) + (i mod k)

let global t ~proc ~offset =
  match t.kind with
  | Kind.Star -> offset
  | Kind.Block -> (proc * t.block) + offset
  | Kind.Cyclic -> (offset * t.procs) + proc
  | Kind.Cyclic_k k ->
      let chunk_in_proc = offset / k and within = offset mod k in
      (((chunk_in_proc * t.procs) + proc) * k) + within

let portion_size t ~proc =
  match t.kind with
  | Kind.Star -> t.extent
  | Kind.Block -> max 0 (min t.extent ((proc + 1) * t.block) - (proc * t.block))
  | Kind.Cyclic ->
      if proc >= t.extent then 0 else Intmath.cdiv (t.extent - proc) t.procs
  | Kind.Cyclic_k k ->
      let nchunks = Intmath.cdiv t.extent k in
      let owned =
        if proc >= nchunks then 0 else Intmath.cdiv (nchunks - proc) t.procs
      in
      if owned = 0 then 0
      else
        let last_chunk = proc + ((owned - 1) * t.procs) in
        let last_size = min k (t.extent - (last_chunk * k)) in
        ((owned - 1) * k) + last_size

let storage_extent t =
  match t.kind with
  | Kind.Star -> t.extent
  | Kind.Block -> t.block
  | Kind.Cyclic -> Intmath.cdiv t.extent t.procs
  | Kind.Cyclic_k k -> Intmath.cdiv (Intmath.cdiv t.extent k) t.procs * k

let merge_abutting ranges =
  List.fold_left
    (fun acc (lo, hi) ->
      match acc with
      | (plo, phi) :: rest when phi + 1 = lo -> (plo, hi) :: rest
      | _ -> (lo, hi) :: acc)
    [] ranges
  |> List.rev

let portion_ranges t ~proc =
  merge_abutting
  @@
  match t.kind with
  | Kind.Star -> [ (0, t.extent - 1) ]
  | Kind.Block ->
      let lo = proc * t.block and hi = min t.extent ((proc + 1) * t.block) - 1 in
      if lo > hi then [] else [ (lo, hi) ]
  | Kind.Cyclic ->
      let rec go i acc = if i >= t.extent then List.rev acc else go (i + t.procs) ((i, i) :: acc) in
      if proc >= t.extent then [] else go proc []
  | Kind.Cyclic_k k ->
      let nchunks = Intmath.cdiv t.extent k in
      let rec go c acc =
        if c >= nchunks then List.rev acc
        else
          let lo = c * k and hi = min t.extent ((c + 1) * k) - 1 in
          go (c + t.procs) ((lo, hi) :: acc)
      in
      go proc []

let iter_portion t ~proc f =
  List.iter
    (fun (lo, hi) ->
      for i = lo to hi do
        f i
      done)
    (portion_ranges t ~proc)

let pp ppf t =
  Format.fprintf ppf "@[<h>%a over %d procs, extent %d, block %d@]" Kind.pp
    t.kind t.procs t.extent t.block
