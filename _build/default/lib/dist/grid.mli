(** Assignment of the machine's processors to the distributed dimensions of an
    array (the [onto] clause of [c$distribute], paper §3.2).

    "The number of processors in each distributed dimension is determined at
    program start-up time": [assign] is called by the runtime with the actual
    processor count, so one executable runs on any machine size. *)

type t = {
  per_dim : int array;
      (** processors assigned to each array dimension; 1 on every
          non-distributed ([*]) dimension. *)
  total : int;  (** product of [per_dim] *)
}

val assign : nprocs:int -> kinds:Kind.t array -> onto:int array option -> t
(** Split [nprocs] across the distributed dimensions of [kinds].

    With [onto = Some w] (one positive weight per *distributed* dimension, in
    order), processor counts are kept as close as possible to the ratio [w].
    Without [onto], all weights are 1 (an even split).

    The split is exact — the product of the per-dimension counts equals
    [nprocs] — obtained by distributing the prime factors of [nprocs]
    greedily onto the dimension currently furthest below its target ratio.
    With one distributed dimension this is simply [nprocs].

    Raises [Invalid_argument] on [nprocs < 1], weight counts that do not
    match the number of distributed dimensions, or non-positive weights.
    If no dimension is distributed, every count is 1 and [total = 1]. *)

val linear : t -> int array -> int
(** Linearise an owner tuple (one owner index per array dimension) into a
    processor number in [0, total). The first dimension varies fastest
    (column-major, matching the Fortran heritage). *)

val delinear : t -> int -> int array
(** Inverse of [linear]. *)

val pp : Format.formatter -> t -> unit
