lib/core/ddsm.mli: Ddsm_exec Ddsm_ir Ddsm_linker Ddsm_machine Ddsm_runtime Ddsm_transform Decl
