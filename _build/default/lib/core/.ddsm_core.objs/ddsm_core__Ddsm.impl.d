lib/core/ddsm.ml: Ddsm_exec Ddsm_frontend Ddsm_linker Ddsm_machine Ddsm_runtime Ddsm_transform List Marshal String
