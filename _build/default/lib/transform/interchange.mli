(** §7.1.1 loop interchange: move processor-tile loops (the [ptile$N] loops
    created by serial tiling) outward across enclosing data loops, so that
    descriptor loads and owner computations that depend only on the tile
    index can be hoisted out of the data loops.

    Interchange reorders iterations, which "is always legal for parallel
    loops within the doacross-nest directive but subject to the same
    legality constraints as normal loop interchange for sequential loops";
    without a dependence analyser, the pass therefore only fires inside
    [Par] regions, where the doacross semantics declare iterations
    independent. *)

val routine : Ddsm_ir.Decl.routine -> Ddsm_ir.Decl.routine
