lib/transform/pipeline.ml: Cse Ddsm_sema Divmod Flags Hoist Interchange Lower Tctx
