lib/transform/divmod.mli: Ddsm_ir
