lib/transform/tctx.ml: Array Ddsm_dist Ddsm_ir Ddsm_sema Decl Expr Format Fresh Hashtbl List Option Stmt String Types
