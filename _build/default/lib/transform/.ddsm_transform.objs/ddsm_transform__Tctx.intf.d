lib/transform/tctx.mli: Ddsm_dist Ddsm_ir Ddsm_sema Types
