lib/transform/flags.mli: Format
