lib/transform/pipeline.mli: Ddsm_ir Ddsm_sema Flags
