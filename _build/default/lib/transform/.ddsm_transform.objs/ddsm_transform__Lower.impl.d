lib/transform/lower.ml: Address Array Ddsm_dist Ddsm_ir Ddsm_sema Decl Expr Flags Fun Hashtbl List Option Stmt Tctx
