lib/transform/address.ml: Array Ddsm_dist Ddsm_ir Expr List Tctx
