lib/transform/interchange.ml: Ddsm_ir Decl Expr List Stmt String
