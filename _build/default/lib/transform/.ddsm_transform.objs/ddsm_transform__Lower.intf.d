lib/transform/lower.mli: Ddsm_ir Flags Tctx
