lib/transform/address.mli: Ddsm_ir Expr Tctx
