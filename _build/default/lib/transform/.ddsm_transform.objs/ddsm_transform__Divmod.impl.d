lib/transform/divmod.ml: Ddsm_ir Decl Expr List Stmt
