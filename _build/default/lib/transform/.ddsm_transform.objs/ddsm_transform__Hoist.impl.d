lib/transform/hoist.ml: Ddsm_ir Decl Expr List Option Stmt Tctx
