lib/transform/cse.ml: Ddsm_ir Decl Expr Hashtbl Hoist List Option Stmt Tctx
