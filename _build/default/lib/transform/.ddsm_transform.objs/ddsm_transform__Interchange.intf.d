lib/transform/interchange.mli: Ddsm_ir
