lib/transform/hoist.mli: Ddsm_ir Tctx
