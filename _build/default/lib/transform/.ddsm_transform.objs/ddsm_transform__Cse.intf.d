lib/transform/cse.mli: Ddsm_ir Tctx
