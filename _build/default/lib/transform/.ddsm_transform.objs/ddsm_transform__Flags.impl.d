lib/transform/flags.ml: Format
