(** §7.3: simulate integer divide/modulo in software using the
    floating-point unit. "While an integer divide takes about 35 cycles on
    the MIPS R10000 processor and is not pipelined, the corresponding
    floating-point operation takes 11 cycles." The pass switches every
    compiler-generated [Idiv]/[Imod] to the FP implementation; the VM's
    cost model charges 11 instead of 35 cycles. User-level integer division
    ([a/b] in source) is not affected. *)

val routine : Ddsm_ir.Decl.routine -> Ddsm_ir.Decl.routine
