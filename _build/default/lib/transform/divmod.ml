open Ddsm_ir

let rewrite =
  Expr.map (function
    | Expr.Idiv (Expr.Hw, a, b) -> Expr.Idiv (Expr.Fp, a, b)
    | Expr.Imod (Expr.Hw, a, b) -> Expr.Imod (Expr.Fp, a, b)
    | e -> e)

let routine (r : Decl.routine) =
  { r with Decl.rbody = List.map (Stmt.map_exprs rewrite) r.Decl.rbody }
