(** §7.2 common-subexpression elimination across reshaped index expressions.

    Works block-by-block (statement lists): repeated occurrences of pure,
    expensive subexpressions — those containing descriptor loads, base
    pointer loads, or div/mod — are computed once into a temporary, as long
    as no intervening statement assigns one of their inputs. Because
    descriptor fields are constant after start-up ("we solved this problem
    by marking such variables as constant", §7.2) and scalar arguments are
    passed by value, [call] statements do not kill availability. *)

val routine : Tctx.t -> Ddsm_ir.Decl.routine -> Ddsm_ir.Decl.routine
