open Ddsm_ir

let is_ptile_var v =
  String.length v >= 5 && String.sub v 0 5 = "ptile"

let uses_var v e = List.mem v (Expr.free_vars e)

(* bottom-up: transform children, then try to swap a [do data { do ptile }]
   pair at this node (bubbling tile loops outward one level per parent). *)
let rec xform_stmt (t : Stmt.t) : Stmt.t =
  match t.Stmt.s with
  | Stmt.Do d -> (
      let d = { d with Stmt.body = List.map xform_stmt d.Stmt.body } in
      match d.Stmt.body with
      | [ { Stmt.s = Stmt.Do pt; loc = ploc } ]
        when is_ptile_var pt.Stmt.var
             && (not (is_ptile_var d.Stmt.var))
             && (not (uses_var d.Stmt.var pt.Stmt.lo))
             && (not (uses_var d.Stmt.var pt.Stmt.hi))
             && not
                  (match pt.Stmt.step with
                  | Some s -> uses_var d.Stmt.var s
                  | None -> false) ->
          let inner = Stmt.mk ~loc:t.Stmt.loc (Stmt.Do { d with Stmt.body = pt.Stmt.body }) in
          Stmt.mk ~loc:ploc (Stmt.Do { pt with Stmt.body = [ inner ] })
      | _ -> { t with Stmt.s = Stmt.Do d })
  | Stmt.If (c, th, el) ->
      { t with Stmt.s = Stmt.If (c, List.map xform_stmt th, List.map xform_stmt el) }
  | Stmt.Par p ->
      { t with Stmt.s = Stmt.Par { Stmt.pbody = List.map xform_stmt p.Stmt.pbody } }
  | _ -> t

(* only touch loops inside Par regions *)
let rec outer (t : Stmt.t) : Stmt.t =
  match t.Stmt.s with
  | Stmt.Par p ->
      { t with Stmt.s = Stmt.Par { Stmt.pbody = List.map xform_stmt p.Stmt.pbody } }
  | Stmt.Do d -> { t with Stmt.s = Stmt.Do { d with Stmt.body = List.map outer d.Stmt.body } }
  | Stmt.If (c, th, el) ->
      { t with Stmt.s = Stmt.If (c, List.map outer th, List.map outer el) }
  | _ -> t

let routine (r : Decl.routine) = { r with Decl.rbody = List.map outer r.Decl.rbody }
