(** The central lowering pass: affinity scheduling of [c$doacross] loops
    (§4.1, Figure 2), loop tiling and peeling for reshaped arrays (§7.1),
    and transformation of reshaped array references (§4.3, Table 1).

    Scheduling always runs — it is the semantics of the directives. The
    strength reduction of reshaped references inside scheduled/tiled loops
    and the creation of serial processor-tile loops are controlled by
    {!Flags.t.tile}; boundary-iteration peeling by {!Flags.t.peel}.

    After this pass the routine contains no [Doacross] statements (they
    become [Par] regions) and every reshaped array reference outside call
    arguments has been lowered to [AbsLoad]/[AbsStore] address arithmetic.
    Reshaped whole-array or element arguments in [call] statements keep
    their [Ref]/[Var] form — the VM implements the pass-by-reference
    convention (charging the unoptimized addressing cost for element
    arguments). *)

val routine :
  Tctx.t -> Flags.t -> Ddsm_ir.Decl.routine -> Ddsm_ir.Decl.routine
