(** The §7.4 pass manager. Order of optimizations:

    + loop scheduling, tiling, interchange and peeling for reshaped arrays
      ({!Lower}, {!Interchange});
    + transformation of reshaped array references, with hoisting of
      indirect loads and div/mod operations ({!Hoist});
    + CSE across index expressions of reshaped arrays ({!Cse});
    + div/mod through the floating-point unit ({!Divmod}).

    (The regular loop-nest optimizer of step 2 in the paper — fusion, cache
    and register tiling — targets single-processor micro-architecture
    effects outside this reproduction's cost model and is omitted; see
    DESIGN.md.) *)

val run : Flags.t -> Ddsm_sema.Sema.env -> Ddsm_ir.Decl.routine
(** Lower and optimize one analysed routine. *)
