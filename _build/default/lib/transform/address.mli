(** Generation of Table 1 address expressions for reshaped-array references.

    An unoptimized reference [A(e1,...,en)] becomes

    {v base[linear_owner] + local_linear v}

    where the per-dimension owner is (0-based [i0 = e_d - lower_d]):
    block [i0 / b], cyclic [i0 mod P], cyclic(k) [(i0/k) mod P]; and the
    per-dimension offset is block [i0 mod b], cyclic [i0 / P], cyclic(k)
    [(i0/(kP))*k + i0 mod k]. [b], [P] and the per-processor storage extents
    are loads from the array's descriptor block ({!Ddsm_ir.Expr.Meta}); the
    portion base pointer is the indirect load {!Ddsm_ir.Expr.BaseOf}.

    A {b binding} replaces a dimension's computation when an enclosing
    processor-tile (or affinity-scheduled) loop has pinned the owner: the
    owner becomes the tile variable and the offset the div/mod-free form
    [v + c - lower - owner*b] (§7.1 strength reduction). *)

open Ddsm_ir

type bind = {
  bvar : string;  (** the loop variable the dimension is affine in *)
  bowner : Expr.t;  (** pinned owner index for the dimension *)
  bonly_n : int option;
      (** when set, only references whose normalized offset [c - lower]
          equals this value use the strength-reduced form (peeling is off,
          so stencil neighbours could cross the portion boundary and must
          keep the general Table 1 addressing) *)
}

type binds = ((string * int) * bind) list
(** keyed by (group key, dimension). *)

val owner_expr : Tctx.arr -> dim:int -> i0:Expr.t -> Expr.t
val offset_expr : Tctx.arr -> dim:int -> i0:Expr.t -> Expr.t

val address : Tctx.arr -> binds -> subs:Expr.t list -> Expr.t
(** Full word-address expression for a reference, using bindings where a
    dimension's subscript is [1*bvar + c]. *)

val cdiv_e : Expr.t -> Expr.t -> Expr.t
(** ceil-division expression (floor-division [Idiv] based). *)

val meta_block : Tctx.arr -> dim:int -> Expr.t
val meta_procs : Tctx.arr -> dim:int -> Expr.t
