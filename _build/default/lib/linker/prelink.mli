(** The pre-linker (paper §5 and the link-time half of §6).

    Given all object files, it:

    + checks common-block consistency: every declaration of a common block
      containing reshaped arrays must place each reshaped member at the same
      offset with the same shape, size, and distribution (§6 — blocks
      without reshaped members are exempt, as in the paper);
    + walks every call site, computes the reshaped-argument signature, and
      rewrites the call to target the matching clone, generating clone
      requests and re-invoking compilation on the defining object until the
      fixpoint is reached ("the first compilation of a program can
      potentially result in several recompilations as the directives are
      propagated all the way down the call graph");
    + resolves every call target and locates the unique program unit.

    The result is ready for the VM (or for saving as a linked image). *)

type linked = {
  routines : (string * Ddsm_sema.Sema.env * Ddsm_ir.Decl.routine) list;
  main : string;
  clones : (string * string) list;  (** (original, clone-name) pairs created *)
  recompilations : int;  (** compiler re-invocations the fixpoint needed *)
}

val link : Objfile.t list -> (linked, string list) result
