(** Shadow files (paper §5): the side-channel the compiler maintains next to
    each object file so the pre-linker can propagate reshape directives
    across separately compiled files.

    A shadow records (a) each subroutine defined in the file along with the
    distribute-reshape directives on its parameters (trivial for original
    routines, non-trivial for clones), (b) each call site that passes a
    reshaped array as an argument, (c) pending clone requests inserted by
    the pre-linker, and (d) every common-block declaration with the shape,
    offset and distribution of each member — the input to the §6 link-time
    consistency check.

    The format is line-oriented text so shadow files are inspectable, as
    in the original system. *)

type common_member = {
  cm_name : string;
  cm_offset : int;  (** word offset within the block *)
  cm_shape : int list;  (** extents; empty for scalars *)
  cm_dist : Sig_.arg option;  (** [Some] iff the member is reshaped *)
}

type t = {
  mutable defs : (string * Sig_.t) list;
  mutable calls : (string * Sig_.t) list;
  mutable requests : (string * Sig_.t) list;
  mutable commons : (string * string * common_member list) list;
      (** (block, declaring routine, members) — one per declaration *)
}

val empty : unit -> t
val add_def : t -> string -> Sig_.t -> unit
val add_call : t -> string -> Sig_.t -> unit
val add_request : t -> string -> Sig_.t -> unit
(** Idempotent. *)

val remove_request : t -> string -> Sig_.t -> unit
val add_common : t -> block:string -> routine:string -> common_member list -> unit
val to_string : t -> string
val of_string : string -> (t, string) result
val save : t -> path:string -> unit
val load : path:string -> (t, string) result
