(** Compiled object files.

    One object corresponds to one source file: the analysed and lowered
    routines, the retained source AST (the pre-linker re-invokes compilation
    on the defining file to instantiate clone requests, §5), the
    optimization flags used, and the shadow data. [save]/[load] give the
    on-disk [.pfo] format. *)

open Ddsm_ir

type unit_ = {
  uname : string;
  env : Ddsm_sema.Sema.env;
  lowered : Decl.routine;
}

type t = {
  src : Decl.file;
  flags : Ddsm_transform.Flags.t;
  units : unit_ list;
  shadow : Shadow.t;
}

val compile :
  ?flags:Ddsm_transform.Flags.t -> Decl.file -> (t, string list) result
(** Analyse and lower every routine of a parsed file, and derive the shadow
    entries (defs, reshaped call signatures, common declarations). *)

val compile_clone :
  t -> original:string -> clone:string -> sig_:Sig_.t -> (unit_, string list) result
(** Re-invoke compilation on this object's source to instantiate a clone of
    [original] named [clone], with the signature's distribute-reshape
    directives added to its formal parameters (§5). The object's shadow is
    updated with the new definition and the request is consumed. *)

val call_signature : Ddsm_sema.Sema.env -> Expr.t list -> Sig_.t
(** Signature of a call site: per argument, the reshape distribution when
    the actual is a whole reshaped array. *)

val save : t -> path:string -> unit
val load : path:string -> (t, string) result
(** Marshal-based container; the sibling [.pfs] shadow file is written by
    {!save} next to the object. *)
