lib/linker/sig_.mli: Ddsm_dist
