lib/linker/objfile.mli: Ddsm_ir Ddsm_sema Ddsm_transform Decl Expr Shadow Sig_
