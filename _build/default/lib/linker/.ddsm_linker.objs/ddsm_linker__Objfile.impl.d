lib/linker/objfile.ml: Array Ddsm_ir Ddsm_sema Ddsm_transform Decl Expr Filename List Marshal Printf Shadow Sig_ Stmt
