lib/linker/shadow.mli: Sig_
