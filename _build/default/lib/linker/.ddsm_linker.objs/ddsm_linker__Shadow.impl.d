lib/linker/shadow.ml: Buffer List Printf Result Sig_ String
