lib/linker/sig_.ml: Ddsm_dist List Option Printf Result Scanf String
