lib/linker/prelink.ml: Ddsm_ir Ddsm_sema Decl Hashtbl List Objfile Option Printf Shadow Sig_ Stmt String
