lib/linker/prelink.mli: Ddsm_ir Ddsm_sema Objfile
