(** Argument distribution signatures.

    A subroutine is cloned "for each distinct combination of
    distribute-reshape directives on its parameters" (paper §5). The
    signature records, per formal parameter, the reshaped distribution of
    the actual argument when a whole reshaped array is passed ([None] for
    scalars, plain/regular arrays, and array-element portions, which need
    no cloning). *)

type arg = { kinds : Ddsm_dist.Kind.t list; onto : int list option }

type t = arg option list

val is_trivial : t -> bool
(** No reshaped arguments: the original routine serves the call. *)

val mangle : string -> t -> string
(** Deterministic clone name, e.g. [mysub$r.block.star]. Trivial signatures
    return the name unchanged. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Inverse of [to_string]; used by the textual shadow-file format. *)

val equal : t -> t -> bool
