module K = Ddsm_dist.Kind

type arg = { kinds : K.t list; onto : int list option }
type t = arg option list

let is_trivial t = List.for_all Option.is_none t

let arg_to_string a =
  let ks =
    String.concat "," (List.map K.to_string a.kinds)
  in
  match a.onto with
  | None -> Printf.sprintf "r(%s)" ks
  | Some ws ->
      Printf.sprintf "r(%s)onto(%s)" ks
        (String.concat "," (List.map string_of_int ws))

let to_string t =
  String.concat ";"
    (List.map (function None -> "-" | Some a -> arg_to_string a) t)

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
      | '*' -> 's'
      | _ -> '.')
    s

let mangle name t =
  if is_trivial t then name else Printf.sprintf "%s$%s" name (sanitize (to_string t))

let equal (a : t) (b : t) = a = b

let parse_arg s =
  if s = "-" then Ok None
  else
    (* r(<kinds>)[onto(<ints>)] *)
    let fail () = Error (Printf.sprintf "bad signature argument %S" s) in
    if String.length s < 3 || s.[0] <> 'r' || s.[1] <> '(' then fail ()
    else
      (* find the close paren matching the opening one (kinds may contain
         nested parens, e.g. cyclic(5)) *)
      let close =
        let depth = ref 0 and found = ref (-1) in
        String.iteri
          (fun i c ->
            if !found < 0 then
              if c = '(' then incr depth
              else if c = ')' then begin
                decr depth;
                if !depth = 0 then found := i
              end)
          s;
        !found
      in
      match (if close < 0 then None else Some close) with
      | None -> fail ()
      | Some close -> (
          let kinds_s = String.sub s 2 (close - 2) in
          let kinds_r =
            List.map K.of_string (String.split_on_char ',' kinds_s)
          in
          if List.exists Result.is_error kinds_r then fail ()
          else
            let kinds = List.map Result.get_ok kinds_r in
            let rest = String.sub s (close + 1) (String.length s - close - 1) in
            if rest = "" then Ok (Some { kinds; onto = None })
            else
              match Scanf.sscanf_opt rest "onto(%s@)" (fun x -> x) with
              | Some ws -> (
                  try
                    Ok
                      (Some
                         {
                           kinds;
                           onto =
                             Some
                               (List.map int_of_string
                                  (String.split_on_char ',' ws));
                         })
                  with _ -> fail ())
              | None -> fail ())

let of_string s =
  if String.trim s = "" then Ok []
  else
    let parts = String.split_on_char ';' s in
    let results = List.map parse_arg parts in
    match List.find_opt Result.is_error results with
    | Some (Error e) -> Error e
    | _ -> Ok (List.map Result.get_ok results)
