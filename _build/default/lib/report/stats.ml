module C = Ddsm_machine.Counters

type t = {
  accesses : int;
  l1_miss_rate : float;
  l2_miss_rate : float;
  l2_misses : int;
  tlb_misses : int;
  tlb_stall_fraction : float;
  local_fill_fraction : float;
  remote_fills : int;
  invalidations : int;
  contention_fraction : float;
}

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

let of_counters (c : C.t) =
  {
    accesses = C.accesses c;
    l1_miss_rate = ratio c.C.l1_misses (C.accesses c);
    l2_miss_rate = ratio c.C.l2_misses c.C.l1_misses;
    l2_misses = c.C.l2_misses;
    tlb_misses = c.C.tlb_misses;
    tlb_stall_fraction = ratio c.C.tlb_stall_cycles c.C.mem_stall_cycles;
    local_fill_fraction = ratio c.C.local_fills (c.C.local_fills + c.C.remote_fills);
    remote_fills = c.C.remote_fills;
    invalidations = c.C.invals_sent;
    contention_fraction = ratio c.C.contention_cycles c.C.mem_stall_cycles;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>accesses: %d@ L1 miss rate: %.2f%%  L2 misses: %d (%.2f%% of L1 \
     misses)@ TLB misses: %d (%.1f%% of memory stall)@ local fills: %.1f%%  \
     remote fills: %d@ invalidations: %d  contention: %.1f%% of stall@]"
    t.accesses
    (100.0 *. t.l1_miss_rate)
    t.l2_misses
    (100.0 *. t.l2_miss_rate)
    t.tlb_misses
    (100.0 *. t.tlb_stall_fraction)
    (100.0 *. t.local_fill_fraction)
    t.remote_fills t.invalidations
    (100.0 *. t.contention_fraction)
