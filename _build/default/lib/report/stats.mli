(** Derived metrics from the simulator's hardware-counter-like totals — the
    quantities the paper's §8 analysis quotes (cache-miss counts, the share
    of time in TLB handling, local vs. remote fills). *)

type t = {
  accesses : int;
  l1_miss_rate : float;
  l2_miss_rate : float;  (** of L1 misses *)
  l2_misses : int;
  tlb_misses : int;
  tlb_stall_fraction : float;  (** of total memory stall *)
  local_fill_fraction : float;  (** of all fills *)
  remote_fills : int;
  invalidations : int;
  contention_fraction : float;
}

val of_counters : Ddsm_machine.Counters.t -> t
val pp : Format.formatter -> t -> unit
