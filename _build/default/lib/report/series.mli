(** Result-series formatting for the benchmark harness: the tables and
    ASCII speedup charts that stand in for the paper's figures. *)

type point = { x : int; y : float }
type t = { label : string; points : point list }

val make : label:string -> (int * float) list -> t
val speedup : baseline:float -> label:string -> (int * float) list -> t
(** Convert (x, time) measurements to speedups over [baseline]. *)

val pp_table :
  ?ylabel:string -> xlabel:string -> Format.formatter -> t list -> unit
(** Aligned columns: one row per distinct x, one column per series. *)

val pp_chart :
  ?height:int -> ?ideal:bool -> xlabel:string -> Format.formatter -> t list -> unit
(** ASCII chart of the series (used for the Figure 4–7 reproductions);
    [ideal] additionally draws the linear-speedup diagonal. *)

val crossovers : t -> t -> (int * int) option
(** First x at which the first series overtakes the second and stays ahead,
    paired with the last x compared (None if it never does). *)
