type point = { x : int; y : float }
type t = { label : string; points : point list }

let make ~label pts =
  { label; points = List.map (fun (x, y) -> { x; y }) pts }

let speedup ~baseline ~label pts =
  { label; points = List.map (fun (x, time) -> { x; y = baseline /. time }) pts }

let xs_of series =
  List.sort_uniq compare
    (List.concat_map (fun s -> List.map (fun p -> p.x) s.points) series)

let value_at s x =
  List.find_opt (fun p -> p.x = x) s.points |> Option.map (fun p -> p.y)

let pp_table ?(ylabel = "") ~xlabel ppf series =
  let xs = xs_of series in
  let col_w =
    List.map (fun s -> max 9 (String.length s.label + 2)) series
  in
  Format.fprintf ppf "%-8s" xlabel;
  List.iter2
    (fun s w -> Format.fprintf ppf "%*s" w s.label)
    series col_w;
  if ylabel <> "" then Format.fprintf ppf "   (%s)" ylabel;
  Format.pp_print_newline ppf ();
  List.iter
    (fun x ->
      Format.fprintf ppf "%-8d" x;
      List.iter2
        (fun s w ->
          match value_at s x with
          | Some y -> Format.fprintf ppf "%*.2f" w y
          | None -> Format.fprintf ppf "%*s" w "-")
        series col_w;
      Format.pp_print_newline ppf ())
    xs

let pp_chart ?(height = 16) ?(ideal = false) ~xlabel ppf series =
  let xs = xs_of series in
  match xs with
  | [] -> ()
  | _ ->
      let marks = [| 'R'; 'o'; '+'; 'x'; '*'; '#'; '@'; '%' |] in
      let ymax =
        List.fold_left
          (fun m s -> List.fold_left (fun m p -> Float.max m p.y) m s.points)
          1.0 series
      in
      let ymax = if ideal then Float.max ymax (float_of_int (List.fold_left max 1 xs)) else ymax in
      let width = List.length xs in
      let grid = Array.make_matrix height width ' ' in
      let plot y col mark =
        let row =
          height - 1 - int_of_float (y /. ymax *. float_of_int (height - 1))
        in
        let row = max 0 (min (height - 1) row) in
        if grid.(row).(col) = ' ' || grid.(row).(col) = '.' then
          grid.(row).(col) <- mark
      in
      if ideal then
        List.iteri (fun col x -> plot (float_of_int x) col '.') xs;
      List.iteri
        (fun si s ->
          List.iteri
            (fun col x ->
              match value_at s x with
              | Some y -> plot y col marks.(si mod Array.length marks)
              | None -> ())
            xs)
        series;
      for r = 0 to height - 1 do
        let yval =
          ymax *. float_of_int (height - 1 - r) /. float_of_int (height - 1)
        in
        Format.fprintf ppf "%7.1f |" yval;
        Array.iter (fun c -> Format.fprintf ppf " %c " c) grid.(r);
        Format.pp_print_newline ppf ()
      done;
      Format.fprintf ppf "        +";
      List.iter (fun _ -> Format.fprintf ppf "---") xs;
      Format.pp_print_newline ppf ();
      Format.fprintf ppf "         ";
      List.iter (fun x -> Format.fprintf ppf "%3d" x) xs;
      Format.fprintf ppf "  (%s)@." xlabel;
      List.iteri
        (fun si s ->
          Format.fprintf ppf "         %c = %s@."
            marks.(si mod Array.length marks)
            s.label)
        series;
      if ideal then Format.fprintf ppf "         . = linear speedup@."

let crossovers a b =
  let xs = xs_of [ a; b ] in
  let rec go last = function
    | [] -> None
    | x :: rest -> (
        match (value_at a x, value_at b x) with
        | Some ya, Some yb when ya > yb ->
            if
              List.for_all
                (fun x' ->
                  match (value_at a x', value_at b x') with
                  | Some ya', Some yb' -> ya' >= yb'
                  | _ -> true)
                rest
            then Some (x, last)
            else go last rest
        | _ -> go last rest)
  in
  go (List.fold_left max 0 xs) xs
