lib/report/stats.ml: Ddsm_machine Format
