lib/report/series.ml: Array Float Format List Option String
