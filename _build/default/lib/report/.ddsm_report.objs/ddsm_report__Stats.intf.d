lib/report/stats.mli: Ddsm_machine Format
