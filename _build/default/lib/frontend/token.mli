(** Tokens of the mini-Fortran surface language. *)

type t =
  | TInt of int
  | TReal of float
  | TStr of string
  | TIdent of string  (** lower-cased *)
  | TPlus
  | TMinus
  | TStar
  | TSlash
  | TPow
  | TLparen
  | TRparen
  | TComma
  | TAssign  (** [=] *)
  | TColon
  | TRel of Ddsm_ir.Expr.relop
  | TAnd
  | TOr
  | TNot
  | TNewline
  | TDirective of string  (** [c$<name>] at start of line *)
  | TEof

val pp : Format.formatter -> t -> unit
val to_string : t -> string
