lib/frontend/lexer.mli: Token
