lib/frontend/token.mli: Ddsm_ir Format
