lib/frontend/lexer.ml: Buffer Ddsm_ir Expr List Printf String Token
