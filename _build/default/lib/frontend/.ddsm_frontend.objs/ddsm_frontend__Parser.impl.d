lib/frontend/parser.ml: Array Ddsm_dist Ddsm_ir Decl Expr Format Lexer List Loc Printf Stmt Token Types
