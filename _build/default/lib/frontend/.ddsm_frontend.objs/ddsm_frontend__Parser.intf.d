lib/frontend/parser.mli: Ddsm_ir
