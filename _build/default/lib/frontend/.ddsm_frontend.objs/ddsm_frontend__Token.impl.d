lib/frontend/token.ml: Ddsm_ir Expr Format
