(** Recursive-descent parser for the mini-Fortran subset with the paper's
    data-distribution directives.

    Supported constructs: [program]/[subroutine] units, [integer] and
    [real*8] (or [real]) declarations of scalars and arrays (with optional
    lower bounds [lo:hi]), [parameter], [common], [equivalence], nested [do]
    loops, block and one-line [if] (with [elseif]/[else]), assignments,
    [call], [print], [return], [continue], [stop], and the directives
    [c$doacross] (clauses: [local], [shared], [nest], [affinity(..) =
    data(..)], [onto], [schedtype]), [c$distribute], [c$distribute_reshape]
    and [c$redistribute]. *)

val parse_file : fname:string -> string -> (Ddsm_ir.Decl.file, string) result
(** Errors are formatted ["file:line: message"]. *)

val parse_expr_string : string -> (Ddsm_ir.Expr.t, string) result
(** Parse a standalone expression (used by tests and tools). *)
