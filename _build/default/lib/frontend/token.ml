open Ddsm_ir

type t =
  | TInt of int
  | TReal of float
  | TStr of string
  | TIdent of string
  | TPlus
  | TMinus
  | TStar
  | TSlash
  | TPow
  | TLparen
  | TRparen
  | TComma
  | TAssign
  | TColon
  | TRel of Expr.relop
  | TAnd
  | TOr
  | TNot
  | TNewline
  | TDirective of string
  | TEof

let pp ppf = function
  | TInt n -> Format.fprintf ppf "%d" n
  | TReal f -> Format.fprintf ppf "%g" f
  | TStr s -> Format.fprintf ppf "%S" s
  | TIdent s -> Format.fprintf ppf "%s" s
  | TPlus -> Format.pp_print_string ppf "+"
  | TMinus -> Format.pp_print_string ppf "-"
  | TStar -> Format.pp_print_string ppf "*"
  | TSlash -> Format.pp_print_string ppf "/"
  | TPow -> Format.pp_print_string ppf "**"
  | TLparen -> Format.pp_print_string ppf "("
  | TRparen -> Format.pp_print_string ppf ")"
  | TComma -> Format.pp_print_string ppf ","
  | TAssign -> Format.pp_print_string ppf "="
  | TColon -> Format.pp_print_string ppf ":"
  | TRel r ->
      Format.pp_print_string ppf
        (match r with
        | Expr.Lt -> ".lt." | Expr.Le -> ".le." | Expr.Gt -> ".gt."
        | Expr.Ge -> ".ge." | Expr.Eq -> ".eq." | Expr.Ne -> ".ne.")
  | TAnd -> Format.pp_print_string ppf ".and."
  | TOr -> Format.pp_print_string ppf ".or."
  | TNot -> Format.pp_print_string ppf ".not."
  | TNewline -> Format.pp_print_string ppf "<newline>"
  | TDirective d -> Format.fprintf ppf "c$%s" d
  | TEof -> Format.pp_print_string ppf "<eof>"

let to_string t = Format.asprintf "%a" pp t
