open Ddsm_ir

type located = { tok : Token.t; line : int }

exception Lex_error of int * string

let dotted_keywords =
  [
    ("lt", Token.TRel Expr.Lt);
    ("le", Token.TRel Expr.Le);
    ("gt", Token.TRel Expr.Gt);
    ("ge", Token.TRel Expr.Ge);
    ("eq", Token.TRel Expr.Eq);
    ("ne", Token.TRel Expr.Ne);
    ("and", Token.TAnd);
    ("or", Token.TOr);
    ("not", Token.TNot);
    ("true", Token.TInt 1);
    ("false", Token.TInt 0);
  ]

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_letter c || is_digit c

(* If position i points at '.', try to read a ".kw." operator; returns the
   token and the position past the trailing dot. *)
let dotted_at s i =
  let n = String.length s in
  if i >= n || s.[i] <> '.' then None
  else
    let j = ref (i + 1) in
    while !j < n && is_letter s.[!j] do
      incr j
    done;
    if !j > i + 1 && !j < n && s.[!j] = '.' then
      let kw = String.lowercase_ascii (String.sub s (i + 1) (!j - i - 1)) in
      match List.assoc_opt kw dotted_keywords with
      | Some tok -> Some (tok, !j + 1)
      | None -> None
    else None

let lex_line ~line s acc0 =
  let n = String.length s in
  let acc = ref acc0 in
  let emit tok = acc := { tok; line } :: !acc in
  let i = ref 0 in
  (try
     while !i < n do
       let c = s.[!i] in
       if c = ' ' || c = '\t' || c = '\r' then incr i
       else if c = '!' then raise Exit (* trailing comment *)
       else if is_digit c then begin
         let j = ref !i in
         while !j < n && is_digit s.[!j] do
           incr j
         done;
         let is_real = ref false in
         (* fractional part, unless the '.' starts a dotted operator *)
         if !j < n && s.[!j] = '.' && dotted_at s !j = None then begin
           is_real := true;
           incr j;
           while !j < n && is_digit s.[!j] do
             incr j
           done
         end;
         (* exponent: e/d *)
         if
           !j < n
           && (s.[!j] = 'e' || s.[!j] = 'E' || s.[!j] = 'd' || s.[!j] = 'D')
           && !j + 1 < n
           && (is_digit s.[!j + 1]
              || ((s.[!j + 1] = '+' || s.[!j + 1] = '-')
                 && !j + 2 < n
                 && is_digit s.[!j + 2]))
         then begin
           is_real := true;
           incr j;
           if s.[!j] = '+' || s.[!j] = '-' then incr j;
           while !j < n && is_digit s.[!j] do
             incr j
           done
         end;
         let text = String.sub s !i (!j - !i) in
         if !is_real then
           let text =
             String.map (fun c -> if c = 'd' || c = 'D' then 'e' else c) text
           in
           emit (Token.TReal (float_of_string text))
         else emit (Token.TInt (int_of_string text));
         i := !j
       end
       else if is_letter c then begin
         let j = ref !i in
         while !j < n && is_ident_char s.[!j] do
           incr j
         done;
         emit (Token.TIdent (String.lowercase_ascii (String.sub s !i (!j - !i))));
         i := !j
       end
       else if c = '\'' then begin
         let buf = Buffer.create 16 in
         let j = ref (!i + 1) in
         let closed = ref false in
         while (not !closed) && !j < n do
           if s.[!j] = '\'' then
             if !j + 1 < n && s.[!j + 1] = '\'' then begin
               Buffer.add_char buf '\'';
               j := !j + 2
             end
             else begin
               closed := true;
               incr j
             end
           else begin
             Buffer.add_char buf s.[!j];
             incr j
           end
         done;
         if not !closed then raise (Lex_error (line, "unterminated string"));
         emit (Token.TStr (Buffer.contents buf));
         i := !j
       end
       else if c = '.' then begin
         match dotted_at s !i with
         | Some (tok, j) ->
             emit tok;
             i := j
         | None -> raise (Lex_error (line, "unexpected '.'"))
       end
       else begin
         let two = if !i + 1 < n then String.sub s !i 2 else "" in
         match two with
         | "**" ->
             emit Token.TPow;
             i := !i + 2
         | "<=" ->
             emit (Token.TRel Expr.Le);
             i := !i + 2
         | ">=" ->
             emit (Token.TRel Expr.Ge);
             i := !i + 2
         | "==" ->
             emit (Token.TRel Expr.Eq);
             i := !i + 2
         | "/=" ->
             emit (Token.TRel Expr.Ne);
             i := !i + 2
         | _ -> (
             incr i;
             match c with
             | '+' -> emit Token.TPlus
             | '-' -> emit Token.TMinus
             | '*' -> emit Token.TStar
             | '/' -> emit Token.TSlash
             | '(' -> emit Token.TLparen
             | ')' -> emit Token.TRparen
             | ',' -> emit Token.TComma
             | '=' -> emit Token.TAssign
             | ':' -> emit Token.TColon
             | '<' -> emit (Token.TRel Expr.Lt)
             | '>' -> emit (Token.TRel Expr.Gt)
             | _ ->
                 raise
                   (Lex_error (line, Printf.sprintf "unexpected character %C" c)))
       end
     done
   with Exit -> ());
  !acc

let is_comment_line s =
  let s' = String.trim s in
  if s' = "" then true
  else if s'.[0] = '!' then true
  else
    (* classic column-1 'c' comment: 'c' or 'C' followed by blank/end, but
       not the 'c$' directive prefix *)
    String.length s > 0
    && (s.[0] = 'c' || s.[0] = 'C')
    && (String.length s = 1 || s.[1] = ' ' || s.[1] = '\t')

let directive_of_line s =
  if String.length s >= 2 && (s.[0] = 'c' || s.[0] = 'C') && s.[1] = '$' then begin
    let rest = String.sub s 2 (String.length s - 2) in
    let rest = String.trim rest in
    let j = ref 0 in
    while !j < String.length rest && is_ident_char rest.[!j] do
      incr j
    done;
    if !j = 0 then None
    else
      Some
        ( String.lowercase_ascii (String.sub rest 0 !j),
          String.sub rest !j (String.length rest - !j) )
  end
  else None

let tokenize ~fname src =
  let lines = String.split_on_char '\n' src in
  try
    let acc = ref [] in
    List.iteri
      (fun idx raw ->
        let line = idx + 1 in
        match directive_of_line raw with
        | Some (name, rest) ->
            acc := { tok = Token.TDirective name; line } :: !acc;
            acc := lex_line ~line rest !acc;
            acc := { tok = Token.TNewline; line } :: !acc
        | None ->
            if not (is_comment_line raw) then begin
              let before = !acc in
              acc := lex_line ~line raw !acc;
              if !acc != before then
                acc := { tok = Token.TNewline; line } :: !acc
            end)
      lines;
    Ok (List.rev ({ tok = Token.TEof; line = List.length lines } :: !acc))
  with Lex_error (line, msg) -> Error (Printf.sprintf "%s:%d: %s" fname line msg)
