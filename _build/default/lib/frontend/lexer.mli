(** Hand-written line-oriented lexer.

    Deviations from fixed-form Fortran 77 (documented in DESIGN.md): source
    is free-form; comments are lines whose first non-blank character is [c]
    (followed by a blank) or [!], plus trailing [!] comments; directives are
    lines starting with [c$] (any case). Identifiers and keywords are
    case-insensitive and lower-cased. [.lt.]-style and [<]-style relational
    operators are both accepted. *)

type located = { tok : Token.t; line : int }

val tokenize : fname:string -> string -> (located list, string) result
(** Produces a token stream with one [TNewline] per non-empty logical line
    and a final [TEof]. Errors are formatted ["file:line: message"]. *)
