(** Semantic analysis: name/type resolution, directive legality, and the
    compile-time half of the paper's error-detection support (§6).

    Produces a per-routine environment with resolved symbols and a rewritten
    routine in which [parameter] constants are substituted, intrinsic calls
    are distinguished from array references, and every directive has been
    validated:

    - distribution directives: declared array targets, per-dimension kind
      arity, [onto] arity, no duplicate or conflicting
      [distribute]/[distribute_reshape] on one array (§3.2: an array is one
      or the other "for the duration of the program");
    - reshaped arrays must not be equivalenced (§3.2.1/§6 compile-time
      check);
    - [c$redistribute] only applies to regular distributed arrays (§3.3);
    - [affinity(i) = data(A(s*i+c))] demands a distributed array and literal
      [s >= 0] and [c] (§3.4);
    - [nest] clauses require a perfect loop nest matching the named
      variables. *)

open Ddsm_ir

type array_info = {
  ai_ty : Types.ty;
  ai_los : Expr.t list;  (** lower-bound expressions, constants substituted *)
  ai_his : Expr.t list;
  ai_const_shape : (int array * int array) option;
      (** (lowers, extents) when all bounds are literal *)
  ai_dist : Decl.dist option;
  ai_formal : bool;
  ai_common : string option;
  ai_equiv_base : string option;  (** storage aliased to this earlier array *)
}

type sym =
  | SScalar of Types.ty * bool  (** type, is-formal *)
  | SArray of array_info
  | SConst of Expr.t  (** [Int] or [Real] literal *)

type env = {
  routine : Decl.routine;  (** rewritten routine *)
  syms : (string, sym) Hashtbl.t;
}

val analyse_routine :
  ?allow_formal_dists:bool -> Decl.routine -> (env, string list) result
(** [allow_formal_dists] is enabled when compiling linker-generated clones,
    whose formals carry propagated reshape directives. *)

val analyse_file :
  ?allow_formal_dists:bool -> Decl.file -> (env list, string list) result
(** Analyses every routine; errors from all routines are concatenated. *)

val find_sym : env -> string -> sym option
val find_array : env -> string -> array_info option
val type_of : env -> Expr.t -> Types.ty
(** Result type of a checked expression (call only on expressions that
    passed analysis; raises [Invalid_argument] on malformed input). *)

val loop_nest_vars : Stmt.doacross -> string list
(** The parallel loop variables: the [nest] clause if present, else the
    single outer loop variable. *)
