(** Intrinsic functions of the surface language: the usual Fortran numeric
    intrinsics plus the [dsm_*] runtime inquiry intrinsics the paper's
    runtime provides "for traversing the individual portions of a
    distributed array" (§3.2.1). *)

type sig_ = {
  arity : int * int;  (** min, max accepted argument count *)
  result : [ `Int | `Real | `Same ];
      (** [`Same]: the common type of the arguments *)
  array_arg : bool;  (** first argument must name a distributed array *)
}

val lookup : string -> sig_ option
val is_intrinsic : string -> bool
val names : string list

val eval_pure : string -> float list -> float option
(** Evaluate a numeric intrinsic on constant arguments ([None] for the
    [dsm_*] family, which needs runtime state). *)

val cycles : string -> int
(** Compute cost charged by the VM for one evaluation. [sqrt], [exp] etc.
    are multi-cycle; [min]/[mod] are cheap; [dsm_*] inquiries cost a handful
    of cycles (they read cached descriptor state). *)
