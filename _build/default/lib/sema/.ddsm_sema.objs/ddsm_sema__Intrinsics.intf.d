lib/sema/intrinsics.mli:
