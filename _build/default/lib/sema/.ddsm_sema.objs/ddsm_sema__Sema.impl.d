lib/sema/sema.ml: Array Ddsm_dist Ddsm_ir Decl Expr Format Hashtbl Intrinsics List Loc Option Printf Stmt String Types
