lib/sema/sema.mli: Ddsm_ir Decl Expr Hashtbl Stmt Types
