lib/sema/intrinsics.ml: Float List String
