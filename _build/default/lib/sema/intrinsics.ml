type sig_ = {
  arity : int * int;
  result : [ `Int | `Real | `Same ];
  array_arg : bool;
}

let table =
  [
    ("mod", { arity = (2, 2); result = `Same; array_arg = false });
    ("min", { arity = (2, 8); result = `Same; array_arg = false });
    ("max", { arity = (2, 8); result = `Same; array_arg = false });
    ("abs", { arity = (1, 1); result = `Same; array_arg = false });
    ("sqrt", { arity = (1, 1); result = `Real; array_arg = false });
    ("exp", { arity = (1, 1); result = `Real; array_arg = false });
    ("log", { arity = (1, 1); result = `Real; array_arg = false });
    ("sin", { arity = (1, 1); result = `Real; array_arg = false });
    ("cos", { arity = (1, 1); result = `Real; array_arg = false });
    ("int", { arity = (1, 1); result = `Int; array_arg = false });
    ("nint", { arity = (1, 1); result = `Int; array_arg = false });
    ("dble", { arity = (1, 1); result = `Real; array_arg = false });
    ("float", { arity = (1, 1); result = `Real; array_arg = false });
    (* runtime inquiry intrinsics over distributed arrays *)
    ("dsm_nprocs", { arity = (0, 0); result = `Int; array_arg = false });
    ("dsm_myproc", { arity = (0, 0); result = `Int; array_arg = false });
    (* dsm_numprocs(a, dim): processors assigned to a dimension *)
    ("dsm_numprocs", { arity = (2, 2); result = `Int; array_arg = true });
    (* dsm_chunksize(a, dim): block/chunk size of a dimension *)
    ("dsm_chunksize", { arity = (2, 2); result = `Int; array_arg = true });
    (* dsm_this_lo/hi(a, dim): bounds of the executing processor's portion *)
    ("dsm_this_lo", { arity = (2, 2); result = `Int; array_arg = true });
    ("dsm_this_hi", { arity = (2, 2); result = `Int; array_arg = true });
    (* dsm_owner(a, dim, index): owning processor index along a dimension *)
    ("dsm_owner", { arity = (3, 3); result = `Int; array_arg = true });
    (* dsm_distribution(a, dim): current kind code (0 star, 1 block,
       2 cyclic, 3 cyclic(k)) — useful around c$redistribute *)
    ("dsm_distribution", { arity = (2, 2); result = `Int; array_arg = true });
    (* dsm_isreshaped(a): 1 if the array is reshaped *)
    ("dsm_isreshaped", { arity = (1, 1); result = `Int; array_arg = true });
  ]

let lookup name = List.assoc_opt name table
let is_intrinsic name = lookup name <> None
let names = List.map fst table

let eval_pure name args =
  match (name, args) with
  | "mod", [ a; b ] when b <> 0.0 -> Some (Float.rem a b)
  | "min", args -> Some (List.fold_left min infinity args)
  | "max", args -> Some (List.fold_left max neg_infinity args)
  | "abs", [ a ] -> Some (Float.abs a)
  | "sqrt", [ a ] -> Some (sqrt a)
  | "exp", [ a ] -> Some (exp a)
  | "log", [ a ] -> Some (log a)
  | "sin", [ a ] -> Some (sin a)
  | "cos", [ a ] -> Some (cos a)
  | "int", [ a ] -> Some (Float.of_int (int_of_float a))
  | "nint", [ a ] -> Some (Float.round a)
  | ("dble" | "float"), [ a ] -> Some a
  | _ -> None

let cycles = function
  | "sqrt" -> 20
  | "exp" | "log" | "sin" | "cos" -> 30
  | "mod" -> 35 (* integer mod uses the divider, like Idiv Hw *)
  | "dsm_nprocs" | "dsm_myproc" -> 1
  | n when String.length n > 4 && String.sub n 0 4 = "dsm_" -> 4
  | _ -> 1
