lib/ir/fresh.mli:
