lib/ir/decl.mli: Ddsm_dist Expr Format Loc Stmt Types
