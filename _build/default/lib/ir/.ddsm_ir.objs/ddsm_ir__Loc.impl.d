lib/ir/loc.ml: Format
