lib/ir/stmt.mli: Ddsm_dist Expr Format Loc Types
