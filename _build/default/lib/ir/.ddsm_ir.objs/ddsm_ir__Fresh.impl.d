lib/ir/fresh.ml: Printf
