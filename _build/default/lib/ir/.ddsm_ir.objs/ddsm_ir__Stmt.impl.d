lib/ir/stmt.ml: Ddsm_dist Expr Format List Loc Option String Types
