lib/ir/decl.ml: Ddsm_dist Expr Format List Loc Stmt String Types
