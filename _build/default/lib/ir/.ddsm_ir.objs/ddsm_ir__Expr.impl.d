lib/ir/expr.ml: Format List Option Types
