(** Declarations, distribution directives, routines, and compilation units. *)

type dim = { dlo : Expr.t; dhi : Expr.t }
(** One array dimension [lo:hi]; the default lower bound is 1. *)

type vdecl = {
  vname : string;
  vty : Types.ty;
  vdims : dim list;  (** empty = scalar *)
  vloc : Loc.t;
}

type dist = {
  dtarget : string;
  dkinds : Ddsm_dist.Kind.t list;
  donto : int list option;
  dreshape : bool;
  dloc : Loc.t;
}

type rkind = Program | Subroutine

type routine = {
  rname : string;
  rkind : rkind;
  rparams : string list;
  rdecls : vdecl list;
  rconsts : (string * Expr.t) list;  (** [parameter] statements, in order *)
  rcommons : (string * string list) list;  (** block name -> member names *)
  requivs : (string * string) list;
  rdists : dist list;
  rbody : Stmt.t list;
  rloc : Loc.t;
}

type file = { fname : string; routines : routine list }

val find_routine : file -> string -> routine option
val find_decl : routine -> string -> vdecl option
val find_dist : routine -> string -> dist option
val dim_default_lower : Expr.t -> dim
val scalar_dims : dim list
val pp_routine : Format.formatter -> routine -> unit
val pp_file : Format.formatter -> file -> unit
