(** Source locations for diagnostics. *)

type t = { file : string; line : int }

val none : t
val v : file:string -> line:int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
