type dim = { dlo : Expr.t; dhi : Expr.t }

type vdecl = { vname : string; vty : Types.ty; vdims : dim list; vloc : Loc.t }

type dist = {
  dtarget : string;
  dkinds : Ddsm_dist.Kind.t list;
  donto : int list option;
  dreshape : bool;
  dloc : Loc.t;
}

type rkind = Program | Subroutine

type routine = {
  rname : string;
  rkind : rkind;
  rparams : string list;
  rdecls : vdecl list;
  rconsts : (string * Expr.t) list;
  rcommons : (string * string list) list;
  requivs : (string * string) list;
  rdists : dist list;
  rbody : Stmt.t list;
  rloc : Loc.t;
}

type file = { fname : string; routines : routine list }

let find_routine f name = List.find_opt (fun r -> r.rname = name) f.routines
let find_decl r name = List.find_opt (fun d -> d.vname = name) r.rdecls
let find_dist r name = List.find_opt (fun d -> d.dtarget = name) r.rdists
let dim_default_lower hi = { dlo = Expr.Int 1; dhi = hi }
let scalar_dims = []

let pp_dist ppf d =
  Format.fprintf ppf "c$distribute%s %s(%a)%a"
    (if d.dreshape then "_reshape" else "")
    d.dtarget
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Ddsm_dist.Kind.pp)
    d.dkinds
    (fun ppf -> function
      | None -> ()
      | Some ws ->
          Format.fprintf ppf " onto(%s)"
            (String.concat "," (List.map string_of_int ws)))
    d.donto

let pp_vdecl ppf v =
  match v.vdims with
  | [] -> Format.fprintf ppf "%a %s" Types.pp_ty v.vty v.vname
  | dims ->
      Format.fprintf ppf "%a %s(%a)" Types.pp_ty v.vty v.vname
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf { dlo; dhi } ->
             match dlo with
             | Expr.Int 1 -> Expr.pp ppf dhi
             | _ -> Format.fprintf ppf "%a:%a" Expr.pp dlo Expr.pp dhi))
        dims

let pp_routine ppf r =
  Format.fprintf ppf "@[<v 2>%s %s(%s)@ %a@ %a@ %a@]@ end"
    (match r.rkind with Program -> "program" | Subroutine -> "subroutine")
    r.rname
    (String.concat ", " r.rparams)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_vdecl)
    r.rdecls
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_dist)
    r.rdists Stmt.pp_body r.rbody

let pp_file ppf f =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_routine)
    f.routines
