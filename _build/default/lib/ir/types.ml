type ty = Tint | Treal

let equal_ty a b = a = b

let pp_ty ppf = function
  | Tint -> Format.pp_print_string ppf "integer"
  | Treal -> Format.pp_print_string ppf "real*8"
