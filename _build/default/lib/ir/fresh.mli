(** Fresh compiler-temporary names. Temporaries use a [$] suffix character
    that cannot appear in source identifiers, so they never collide with
    user variables. *)

type t

val create : unit -> t
val var : t -> string -> string
(** [var t hint] returns e.g. ["hint$3"]. *)
