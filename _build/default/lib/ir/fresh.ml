type t = int ref

let create () = ref 0

let var t hint =
  incr t;
  Printf.sprintf "%s$%d" hint !t
