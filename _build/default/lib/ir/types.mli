(** Scalar types of the source language: [integer] and [real*8]. Both occupy
    one 8-byte word of simulated memory. *)

type ty = Tint | Treal

val equal_ty : ty -> ty -> bool
val pp_ty : Format.formatter -> ty -> unit
