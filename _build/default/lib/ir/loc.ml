type t = { file : string; line : int }

let none = { file = "<none>"; line = 0 }
let v ~file ~line = { file; line }
let pp ppf t = Format.fprintf ppf "%s:%d" t.file t.line
let to_string t = Format.asprintf "%a" pp t
