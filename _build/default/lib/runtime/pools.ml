open Ddsm_machine

type pool = { mutable cursor : int; mutable limit : int; mutable slabs : int }

type t = {
  heap : Heap.t;
  mem : Memsys.t;
  slab_words : int;
  page_words : int;
  pools : (int, pool) Hashtbl.t;
}

let create heap mem ~slab_pages =
  if slab_pages < 1 then invalid_arg "Pools.create";
  let page_bytes = (Memsys.config mem).Config.page_bytes in
  let page_words = page_bytes / Heap.word_bytes in
  { heap; mem; slab_words = slab_pages * page_words; page_words; pools = Hashtbl.create 64 }

let pool_of t proc =
  match Hashtbl.find_opt t.pools proc with
  | Some p -> p
  | None ->
      let p = { cursor = 0; limit = 0; slabs = 0 } in
      Hashtbl.replace t.pools proc p;
      p

let grow t proc p ~need =
  let words = max t.slab_words ((need + t.page_words - 1) / t.page_words * t.page_words) in
  let base = Heap.alloc t.heap ~words ~align_words:t.page_words in
  let node = Config.node_of_proc (Memsys.config t.mem) proc in
  Memsys.place_bytes t.mem
    ~lo:(Heap.byte_of_word base)
    ~hi:(Heap.byte_of_word (base + words) - 1)
    ~node;
  p.cursor <- base;
  p.limit <- base + words;
  p.slabs <- p.slabs + 1

let alloc t ~proc ~words =
  if words < 0 then invalid_arg "Pools.alloc";
  let p = pool_of t proc in
  if p.cursor + words > p.limit then grow t proc p ~need:words;
  let addr = p.cursor in
  p.cursor <- p.cursor + words;
  addr

let slabs_allocated t ~proc = (pool_of t proc).slabs
