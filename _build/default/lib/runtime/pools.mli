(** Per-processor storage pools for reshaped arrays (paper §4.3):

    "each processor allocates a pool of storage from the shared heap, maps
    the pages for this pool of storage from within its local memory, and
    allocates its portion of each reshaped array from this pool of memory.
    We can therefore avoid padding the ends of each portion up to a page
    boundary."

    Pool slabs are page-aligned and their pages are explicitly placed on the
    owning processor's node; allocations within a slab are word-aligned
    only. *)

type t

val create : Heap.t -> Ddsm_machine.Memsys.t -> slab_pages:int -> t
(** [slab_pages] is the granularity (in pages) by which each processor's
    pool grows. *)

val alloc : t -> proc:int -> words:int -> int
(** Allocate [words] words local to [proc]; returns the word address.
    Consecutive allocations by the same processor pack densely. *)

val slabs_allocated : t -> proc:int -> int
