open Ddsm_machine

type t = {
  heap : Heap.t;
  mem : Memsys.t;
  pools : Pools.t;
  argcheck : Argcheck.t;
  arrays : (string, Darray.t) Hashtbl.t;
  mutable redist_pages : int;
  job_procs : int;
}

let create cfg ~policy ~heap_words ?(pool_slab_pages = 4) ?job_procs () =
  let heap = Heap.create ~words:heap_words in
  let mem = Memsys.create cfg ~policy in
  let job_procs =
    match job_procs with
    | None -> cfg.Config.nprocs
    | Some j ->
        if j < 1 || j > cfg.Config.nprocs then
          invalid_arg "Rt.create: job_procs out of machine range";
        j
  in
  {
    heap;
    mem;
    pools = Pools.create heap mem ~slab_pages:pool_slab_pages;
    argcheck = Argcheck.create ();
    arrays = Hashtbl.create 64;
    redist_pages = 0;
    job_procs;
  }

let nprocs t = t.job_procs
let page_words t = (Memsys.config t.mem).Config.page_bytes / Heap.word_bytes

let register t (a : Darray.t) =
  if Hashtbl.mem t.arrays a.Darray.name then
    invalid_arg (Printf.sprintf "Rt: array %s already declared" a.Darray.name);
  Hashtbl.replace t.arrays a.Darray.name a;
  a

let declare_plain t ~name ~elem ~extents ?lower () =
  register t
    (Darray.alloc_plain t.heap ~name ~elem ~extents ?lower
       ~page_words:(page_words t) ())

let declare_regular t ~name ~elem ~extents ?lower ~kinds ?onto () =
  register t
    (Darray.alloc_regular t.heap t.mem ~name ~elem ~extents ?lower ~kinds ?onto
       ~nprocs:t.job_procs ())

let declare_reshaped t ~name ~elem ~extents ?lower ~kinds ?onto () =
  register t
    (Darray.alloc_reshaped t.heap t.mem t.pools ~name ~elem ~extents ?lower
       ~kinds ?onto ~nprocs:t.job_procs ())

let redistribute t ~name ~kinds ?onto () =
  match Hashtbl.find_opt t.arrays name with
  | None -> Error (Printf.sprintf "redistribute: unknown array %s" name)
  | Some a -> (
      match Darray.redistribute a t.heap t.mem ~kinds ?onto ~nprocs:t.job_procs () with
      | Ok moved ->
          t.redist_pages <- t.redist_pages + moved;
          Ok moved
      | Error _ as e -> e)

let find_array t name = Hashtbl.find_opt t.arrays name

let read t ~addr ~elem =
  match (elem : Darray.elem) with
  | Darray.Real -> Heap.get_real t.heap addr
  | Darray.Int -> float_of_int (Heap.get_int t.heap addr)

let write t ~addr ~elem v =
  match (elem : Darray.elem) with
  | Darray.Real -> Heap.set_real t.heap addr v
  | Darray.Int -> Heap.set_int t.heap addr (int_of_float v)
