lib/runtime/heap.mli:
