lib/runtime/argcheck.mli: Ddsm_dist Kind
