lib/runtime/darray.ml: Array Config Ddsm_dist Ddsm_machine Dim_map Hashtbl Heap Kind Layout List Memsys Pagetable Pools Printf
