lib/runtime/argcheck.ml: Array Ddsm_dist Format Hashtbl Kind List Option
