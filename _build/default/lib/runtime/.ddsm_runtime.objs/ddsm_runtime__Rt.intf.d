lib/runtime/rt.mli: Argcheck Config Darray Ddsm_dist Ddsm_machine Hashtbl Heap Kind Memsys Pagetable Pools
