lib/runtime/pools.mli: Ddsm_machine Heap
