lib/runtime/rt.ml: Argcheck Config Darray Ddsm_machine Hashtbl Heap Memsys Pools Printf
