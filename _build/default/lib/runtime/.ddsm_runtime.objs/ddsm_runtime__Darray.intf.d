lib/runtime/darray.mli: Ddsm_dist Ddsm_machine Heap Kind Layout Pools
