lib/runtime/pools.ml: Config Ddsm_machine Hashtbl Heap Memsys
