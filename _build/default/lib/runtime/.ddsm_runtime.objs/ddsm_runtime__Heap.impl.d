lib/runtime/heap.ml: Bigarray
