(** The runtime-system context: one simulated machine plus heap, reshaped
    storage pools, the argument-check table, and the array registry. This is
    what the startup code elaborates distribution directives against and
    what the VM threads through execution. *)

open Ddsm_dist
open Ddsm_machine

type t = {
  heap : Heap.t;
  mem : Memsys.t;
  pools : Pools.t;
  argcheck : Argcheck.t;
  arrays : (string, Darray.t) Hashtbl.t;
  mutable redist_pages : int;  (** pages moved by redistribute calls *)
  job_procs : int;
      (** processors this job runs on (<= machine size): the paper runs
          P-processor jobs on a fixed 128-processor Origin-2000 *)
}

val create :
  Config.t -> policy:Pagetable.policy -> heap_words:int ->
  ?pool_slab_pages:int -> ?job_procs:int -> unit -> t

val nprocs : t -> int
(** Job processor count (defaults to the machine size). *)

val page_words : t -> int

(** Allocation entry points used by program elaboration. Arrays are
    registered by name; re-declaring a name is an error (the frontend
    scopes names before reaching here). *)

val declare_plain :
  t -> name:string -> elem:Darray.elem -> extents:int array ->
  ?lower:int array -> unit -> Darray.t

val declare_regular :
  t -> name:string -> elem:Darray.elem -> extents:int array ->
  ?lower:int array -> kinds:Kind.t array -> ?onto:int array -> unit -> Darray.t

val declare_reshaped :
  t -> name:string -> elem:Darray.elem -> extents:int array ->
  ?lower:int array -> kinds:Kind.t array -> ?onto:int array -> unit -> Darray.t

val redistribute :
  t -> name:string -> kinds:Kind.t array -> ?onto:int array -> unit ->
  (int, string) result
(** Returns migrated page count; the VM charges the migration cost. *)

val find_array : t -> string -> Darray.t option

val read : t -> addr:int -> elem:Darray.elem -> float
(** Raw data read (no timing); integers are returned as floats for the VM's
    untyped data path. *)

val write : t -> addr:int -> elem:Darray.elem -> float -> unit
