type t = { cfg : Config.t; nnodes : int }

let create cfg = { cfg; nnodes = Config.nnodes cfg }
let nnodes t = t.nnodes
let node_of_proc t p = Config.node_of_proc t.cfg p

let hops t n1 n2 =
  if n1 < 0 || n1 >= t.nnodes || n2 < 0 || n2 >= t.nnodes then
    invalid_arg "Topology.hops: node out of range";
  if n1 = n2 then 0
  else
    let x = n1 lxor n2 in
    let rec pc x acc = if x = 0 then acc else pc (x land (x - 1)) (acc + 1) in
    max 1 (pc x 0)

let route_cycles t ~from_node ~to_node =
  let h = hops t from_node to_node in
  if h = 0 then 0
  else
    (t.cfg.Config.remote_base_cycles - t.cfg.Config.local_mem_cycles)
    + ((h - 1) * t.cfg.Config.remote_per_hop_cycles)

let mem_latency t ~proc_node ~home_node =
  let h = hops t proc_node home_node in
  if h = 0 then t.cfg.Config.local_mem_cycles
  else
    t.cfg.Config.remote_base_cycles
    + ((h - 1) * t.cfg.Config.remote_per_hop_cycles)
