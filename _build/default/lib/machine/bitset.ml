type t = { words : int array; n : int }

let wbits = 62 (* stay clear of the tag bit; any bound < Sys.int_size works *)

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + wbits - 1) / wbits) 0; n }

let universe t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: element out of universe"

let add t i =
  check t i;
  t.words.(i / wbits) <- t.words.(i / wbits) lor (1 lsl (i mod wbits))

let remove t i =
  check t i;
  t.words.(i / wbits) <- t.words.(i / wbits) land lnot (1 lsl (i mod wbits))

let mem t i =
  check t i;
  t.words.(i / wbits) land (1 lsl (i mod wbits)) <> 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let clear t = Array.fill t.words 0 (Array.length t.words) 0

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let copy t = { t with words = Array.copy t.words }

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (List.rev (fold (fun i acc -> i :: acc) t []))
