(** Dense mutable bit sets for directory sharer vectors (up to the machine's
    processor count, 128 on the Origin-2000). *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0..n-1]. *)

val universe : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool
val clear : t -> unit
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val copy : t -> t
val pp : Format.formatter -> t -> unit
