lib/machine/topology.mli: Config
