lib/machine/pagetable.ml: Array Config Hashtbl Option
