lib/machine/counters.ml: Array Format
