lib/machine/memsys.ml: Array Cache Config Counters Directory List Pagetable Tlb Topology
