lib/machine/topology.ml: Config
