lib/machine/directory.mli: Bitset
