lib/machine/directory.ml: Bitset Hashtbl
