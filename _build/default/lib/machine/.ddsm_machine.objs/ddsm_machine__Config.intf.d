lib/machine/config.mli:
