lib/machine/memsys.mli: Config Counters Directory Pagetable Topology
