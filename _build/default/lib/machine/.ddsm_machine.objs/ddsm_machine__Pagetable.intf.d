lib/machine/pagetable.mli: Config
