lib/machine/cache.ml: Bigarray Bytes Config
