lib/machine/tlb.ml: Hashtbl
