lib/machine/tlb.mli:
