lib/machine/bitset.ml: Array Format List
