lib/machine/bitset.mli: Format
