type abind = {
  ab_darr : Ddsm_runtime.Darray.t option;
  ab_base : int;
  ab_lowers : int array;
  ab_strides : int array;
  ab_extents : int array;
  ab_ty : Ddsm_ir.Types.ty;
}

type t = { ints : int array; floats : float array; arrays : abind array }

let create ~n_int ~n_float ~arrays =
  { ints = Array.make n_int 0; floats = Array.make n_float 0.0; arrays }

let copy_scalars t =
  { t with ints = Array.copy t.ints; floats = Array.copy t.floats }

let dummy_abind =
  {
    ab_darr = None;
    ab_base = -1;
    ab_lowers = [||];
    ab_strides = [||];
    ab_extents = [||];
    ab_ty = Ddsm_ir.Types.Treal;
  }
