(** Executable program representation: analysed and lowered routines, as
    produced by the compilation pipeline and the pre-linker. *)

open Ddsm_ir

type routine = {
  env : Ddsm_sema.Sema.env;  (** post-sema environment (symbols, types) *)
  code : Decl.routine;  (** lowered, optimized body *)
}

type t = {
  routines : (string, routine) Hashtbl.t;
  main : string;  (** name of the program unit *)
}

val create : (string * routine) list -> main:string -> t
val find : t -> string -> routine option
val iter : t -> (string -> routine -> unit) -> unit
