(** Per-invocation variable frames.

    Scalars live in typed slot arrays (resolved to indices at compile time);
    array names resolve to {!abind} bindings that carry either a full
    descriptor (locally declared arrays, whole-array arguments) or a bare
    base address (array-element arguments viewed as plain Fortran arrays by
    the callee). Parallel workers get a private copy of the scalar slots —
    the [local]-clause semantics — and share the array bindings. *)

type abind = {
  ab_darr : Ddsm_runtime.Darray.t option;
  ab_base : int;
      (** word address for column-major indexing; for whole reshaped arrays
          this is the descriptor address (a unique identity for argument
          checking), never indexed directly *)
  ab_lowers : int array;
  ab_strides : int array;
  ab_extents : int array;
  ab_ty : Ddsm_ir.Types.ty;
}

type t = { ints : int array; floats : float array; arrays : abind array }

val create : n_int:int -> n_float:int -> arrays:abind array -> t
val copy_scalars : t -> t
(** Fresh scalar slots holding the same values; shared array bindings. *)

val dummy_abind : abind
