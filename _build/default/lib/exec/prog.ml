open Ddsm_ir

type routine = { env : Ddsm_sema.Sema.env; code : Decl.routine }
type t = { routines : (string, routine) Hashtbl.t; main : string }

let create list ~main =
  let routines = Hashtbl.create 16 in
  List.iter (fun (n, r) -> Hashtbl.replace routines n r) list;
  if not (Hashtbl.mem routines main) then
    invalid_arg (Printf.sprintf "Prog.create: main routine %s missing" main);
  { routines; main }

let find t n = Hashtbl.find_opt t.routines n
let iter t f = Hashtbl.iter f t.routines
