type 'a t = { mutable arr : (int * 'a) array; mutable n : int }

let create () = { arr = [||]; n = 0 }
let is_empty t = t.n = 0
let size t = t.n

let grow t item =
  let cap = Array.length t.arr in
  if t.n >= cap then begin
    let arr' = Array.make (max 16 (2 * cap)) item in
    Array.blit t.arr 0 arr' 0 t.n;
    t.arr <- arr'
  end

let push t ~key v =
  grow t (key, v);
  t.arr.(t.n) <- (key, v);
  let i = ref t.n in
  t.n <- t.n + 1;
  while !i > 0 && fst t.arr.((!i - 1) / 2) > fst t.arr.(!i) do
    let p = (!i - 1) / 2 in
    let tmp = t.arr.(p) in
    t.arr.(p) <- t.arr.(!i);
    t.arr.(!i) <- tmp;
    i := p
  done

let pop t =
  if t.n = 0 then None
  else begin
    let top = t.arr.(0) in
    t.n <- t.n - 1;
    t.arr.(0) <- t.arr.(t.n);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.n && fst t.arr.(l) < fst t.arr.(!smallest) then smallest := l;
      if r < t.n && fst t.arr.(r) < fst t.arr.(!smallest) then smallest := r;
      if !smallest = !i then continue_ := false
      else begin
        let tmp = t.arr.(!smallest) in
        t.arr.(!smallest) <- t.arr.(!i);
        t.arr.(!i) <- tmp;
        i := !smallest
      end
    done;
    Some top
  end
