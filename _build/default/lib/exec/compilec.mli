(** Closure compilation of lowered routines.

    Each routine compiles once into nested OCaml closures over a typed slot
    frame. Every statement charges its static instruction cost (ALU ops,
    div/mod at the §7.3-dependent price, intrinsics, addressing) to the
    executing worker's clock; every memory reference — array elements,
    [AbsLoad]/[AbsStore] addresses, descriptor ([Meta]) and processor-base
    ([BaseOf]) loads — performs an {!Eff.Mem} effect so the engine can
    charge the simulated memory system's latency. [Par] regions perform
    {!Eff.Fork}.

    Subroutine calls implement the Fortran conventions: arrays by
    reference (whole arrays carry their descriptor; elements of reshaped
    arrays are address-computed through the runtime oracle at the
    unoptimized Table 1 cost and become plain views in the callee), scalars
    by value (a documented simplification). When checks are enabled, calls
    register reshaped actuals in the §6 hash table and entries validate
    formals against it. *)

type g

val create :
  Prog.t ->
  rt:Ddsm_runtime.Rt.t ->
  checks:bool ->
  bounds:bool ->
  static_abind:(routine:string -> array:string -> Frame.abind option) ->
  print:(string -> unit) ->
  g

val set_cycle_limit : g -> int -> unit
(** Compiled loops abort with a runtime error once the worker clock passes
    this limit (checked at loop-entry granularity; memory accesses are
    checked by the engine). *)

val compile_all : g -> unit
(** Compile every routine in the program. Raises {!Eff.Runtime_error} on
    malformed input (e.g. calling an undefined routine is deferred to call
    time, but arity mismatches fail here). *)

val run_main : g -> Eff.ws -> unit
(** Execute the program unit on the given worker (inside an engine that
    handles the effects). *)
