(** The execution engine: elaborates the program's static storage against
    the runtime (allocating every declared array, applying distribution
    directives exactly as the paper's start-up code does), compiles all
    routines, and then runs the program unit on simulated processor 0.

    Workers are effect-based coroutines scheduled strictly by minimum local
    clock, so memory-system events (directory transactions, memory-module
    queueing) happen in global simulated-time order and runs are
    deterministic. A [Par] region forks one worker per simulated processor
    and joins at the maximum child clock — the doacross's implicit
    barrier. *)

type outcome = {
  cycles : int;  (** program-unit completion time in simulated cycles *)
  prints : string list;
  counters : Ddsm_machine.Counters.t;  (** machine-wide totals *)
  per_proc : Ddsm_machine.Counters.t array;
}

val run :
  Prog.t ->
  rt:Ddsm_runtime.Rt.t ->
  ?checks:bool ->
  ?bounds:bool ->
  ?max_cycles:int ->
  unit ->
  (outcome, string) result
(** [checks] enables the §6 runtime argument checks (default true);
    [bounds] enables subscript bounds checking on plain array views
    (default false); [max_cycles] aborts runaway programs. *)

val elaborate : Prog.t -> rt:Ddsm_runtime.Rt.t -> unit
(** Allocate static storage only (exposed for tests). Raises
    {!Eff.Runtime_error} on inconsistent common blocks. *)
