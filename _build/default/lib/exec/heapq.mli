(** Minimal binary min-heap of (key, payload) pairs, used by the scheduler
    to pick the runnable simulated processor with the smallest local clock. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> key:int -> 'a -> unit
val pop : 'a t -> (int * 'a) option
val is_empty : 'a t -> bool
val size : 'a t -> int
