lib/exec/frame.mli: Ddsm_ir Ddsm_runtime
