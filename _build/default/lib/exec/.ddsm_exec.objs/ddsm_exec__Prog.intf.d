lib/exec/prog.mli: Ddsm_ir Ddsm_sema Decl Hashtbl
