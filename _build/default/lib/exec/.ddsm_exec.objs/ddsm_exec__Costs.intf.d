lib/exec/costs.mli:
