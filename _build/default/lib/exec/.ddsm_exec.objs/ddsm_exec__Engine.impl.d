lib/exec/engine.ml: Array Compilec Ddsm_ir Ddsm_machine Ddsm_runtime Ddsm_sema Decl Eff Effect Frame Hashtbl Heapq List Option Printf Prog Types
