lib/exec/compilec.mli: Ddsm_runtime Eff Frame Prog
