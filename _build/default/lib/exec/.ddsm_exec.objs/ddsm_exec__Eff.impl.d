lib/exec/eff.ml: Effect Printf
