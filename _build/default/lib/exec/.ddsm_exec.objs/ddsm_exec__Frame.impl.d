lib/exec/frame.ml: Array Ddsm_ir Ddsm_runtime
