lib/exec/heapq.ml: Array
