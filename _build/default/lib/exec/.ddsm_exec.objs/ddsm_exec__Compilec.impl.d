lib/exec/compilec.ml: Array Costs Ddsm_dist Ddsm_ir Ddsm_runtime Ddsm_sema Decl Eff Effect Expr Float Frame Fun Hashtbl List Option Printf Prog Stmt String Types
