lib/exec/prog.ml: Ddsm_ir Ddsm_sema Decl Hashtbl List Printf
