lib/exec/engine.mli: Ddsm_machine Ddsm_runtime Prog
