lib/exec/costs.ml: Ddsm_sema
