lib/exec/eff.mli: Effect
