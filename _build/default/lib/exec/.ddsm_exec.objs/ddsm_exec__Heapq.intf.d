lib/exec/heapq.mli:
